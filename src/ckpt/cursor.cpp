#include "ckpt/cursor.hpp"

#include <algorithm>
#include <unordered_map>

#include "base/error.hpp"
#include "base/log.hpp"

namespace tir::ckpt {

ReplayCursor::ReplayCursor(titio::SharedTrace trace, const platform::Platform& platform,
                           core::ReplayConfig config, core::Backend backend)
    : trace_(std::move(trace)),
      platform_(platform),
      config_(std::move(config)),
      backend_(backend),
      fingerprint_(scenario_fingerprint(backend, platform, config_)) {
  // The cursor drives these itself; a caller-provided resume/stop would
  // silently skew every query.
  config_.resume = nullptr;
  config_.stop_time = std::numeric_limits<double>::infinity();
}

core::ReplayResult ReplayCursor::record(const RecordOptions& options) {
  titio::SharedTrace::Cursor source = trace_.cursor();
  RecordOutcome outcome = record_replay(source, platform_, config_, backend_, options);
  current_ = nullptr;
  set_ = std::move(outcome.set);
  return outcome.result;
}

std::size_t ReplayCursor::adopt(const CheckpointSet& set) {
  if (set.fingerprint != fingerprint_) {
    throw ConfigError("checkpoint set was recorded under a different scenario (fingerprint " +
                      std::to_string(set.fingerprint) + ", this cursor is " +
                      std::to_string(fingerprint_) + ")");
  }
  if (set.nprocs != nprocs()) {
    throw ConfigError("checkpoint set covers " + std::to_string(set.nprocs) +
                      " ranks, trace has " + std::to_string(nprocs()));
  }
  const tit::Trace& trace = trace_.trace();
  const auto n = static_cast<std::size_t>(nprocs());
  // One incremental fold pass over the trace validates every checkpoint's
  // per-rank prefix hash: positions are non-decreasing across an ascending
  // checkpoint sequence, so each rank's hash advances monotonically.
  std::vector<std::uint64_t> pos(n, 0);
  std::vector<std::uint64_t> hash(n, prefix_hash_seed());
  std::size_t dropped = 0;
  CheckpointSet adopted;
  adopted.fingerprint = set.fingerprint;
  adopted.nprocs = set.nprocs;
  for (const TraceCheckpoint& c : set.checkpoints) {
    bool ok = c.ranks.size() == n &&
              (adopted.checkpoints.empty() || c.time > adopted.checkpoints.back().time);
    for (std::size_t r = 0; r < n && c.ranks.size() == n; ++r) {
      const CkptRankState& st = c.ranks[r];
      const std::vector<tit::Action>& seq = trace.actions(static_cast<int>(r));
      if (st.position > seq.size() || st.position < pos[r]) {
        ok = false;
        continue;
      }
      while (pos[r] < st.position) {
        hash[r] = fold_action_hash(hash[r], seq[static_cast<std::size_t>(pos[r])]);
        ++pos[r];
      }
      if (hash[r] != st.prefix_hash) ok = false;
    }
    if (ok) {
      adopted.checkpoints.push_back(c);
    } else {
      ++dropped;
    }
  }
  if (dropped > 0) {
    TIR_LOG(Warn, "dropped " + std::to_string(dropped) +
                      " checkpoint(s) that disagree with the trace actions (trace edited "
                      "beyond a tail append?); " +
                      std::to_string(adopted.checkpoints.size()) + " adopted");
  }
  current_ = nullptr;
  set_ = std::move(adopted);
  return set_.checkpoints.size();
}

std::size_t ReplayCursor::adopt_file(const std::string& path) {
  for (const titio::CheckpointBlock& block : titio::read_checkpoints(path)) {
    if (block.fingerprint == fingerprint_) return adopt(CheckpointSet::from_block(block));
  }
  return 0;
}

void ReplayCursor::save(const std::string& path) const {
  titio::append_checkpoints(path, {set_.to_block()});
}

void ReplayCursor::seek(double t) { current_ = set_.nearest_before(t); }

core::ReplayResult ReplayCursor::run(double stop_time, obs::Sink* sink) {
  core::ReplayConfig cfg = config_;
  cfg.sink = sink;
  cfg.stop_time = stop_time;
  core::ResumeState resume;
  if (current_ != nullptr) {
    resume.time = current_->time;
    resume.positions.reserve(current_->ranks.size());
    for (const CkptRankState& r : current_->ranks) {
      resume.positions.push_back(r.position);
      resume.times.push_back(r.time);
      resume.collective_sites.push_back(r.collective_sites);
    }
    cfg.resume = &resume;
  }
  titio::SharedTrace::Cursor source = trace_.cursor();
  return core::replay(backend_, source, platform_, cfg);
}

core::ReplayResult ReplayCursor::run_until(double t, obs::Sink* sink) { return run(t, sink); }

core::ReplayResult ReplayCursor::run_to_end(obs::Sink* sink) {
  return run(std::numeric_limits<double>::infinity(), sink);
}

QueryResult ReplayCursor::query(double from, double to) {
  if (to < from || from < 0.0) {
    throw ConfigError("query window is inverted or negative: [" + std::to_string(from) + ", " +
                      std::to_string(to) + "]");
  }
  seek(from);
  obs::TimelineSink sink;
  QueryResult q;
  q.from = from;
  q.to = to;
  q.result = run(to, &sink);
  q.timelines.resize(static_cast<std::size_t>(nprocs()));
  for (int r = 0; r < nprocs() && r < sink.nranks(); ++r) {
    q.timelines[static_cast<std::size_t>(r)] = obs::slice(sink.intervals(r), from, to);
  }
  return q;
}

WindowSweepResult window_sweep(const titio::SharedTrace& trace,
                               const std::vector<core::Scenario>& scenarios, double from,
                               double to, const core::SweepOptions& options) {
  if (to < from || from < 0.0) {
    throw ConfigError("window_sweep window is inverted or negative: [" + std::to_string(from) +
                      ", " + std::to_string(to) + "]");
  }
  const std::size_t n = scenarios.size();
  WindowSweepResult result;
  result.windows.resize(n);
  if (n == 0) return result;

  // Scenarios with the same fingerprint share one recording: record once
  // (only up to `to` — later checkpoints can never serve this window) and
  // every member forks its windowed run from the snapshot nearest `from`.
  std::unordered_map<std::uint64_t, CheckpointSet> sets;
  std::vector<std::uint64_t> fp(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!scenarios[i].platform) continue;  // core::sweep reports it
    fp[i] = scenario_fingerprint(scenarios[i].backend, *scenarios[i].platform,
                                 scenarios[i].config);
    if (sets.count(fp[i]) != 0) continue;
    CheckpointSet set;
    try {
      titio::SharedTrace::Cursor source = trace.cursor();
      core::ReplayConfig recording = scenarios[i].config;
      recording.sink = nullptr;
      recording.resume = nullptr;
      recording.stop_time = to;
      set = record_replay(source, *scenarios[i].platform, recording, scenarios[i].backend)
                .set;
    } catch (const ConfigError&) {
      // Not seekable (contended sharing, oversubscribed hosts): this group
      // replays its window cold.  Still windowed — just no warm prefix.
    }
    sets.emplace(fp[i], std::move(set));
  }

  std::vector<core::ResumeState> resumes(n);
  std::vector<std::unique_ptr<obs::TimelineSink>> sinks(n);
  std::vector<core::Scenario> windowed = scenarios;
  for (std::size_t i = 0; i < n; ++i) {
    sinks[i] = std::make_unique<obs::TimelineSink>();
    windowed[i].config.sink = sinks[i].get();
    windowed[i].config.stop_time = to;
    windowed[i].config.resume = nullptr;
    const auto it = sets.find(fp[i]);
    if (it == sets.end()) continue;
    const TraceCheckpoint* snap = it->second.nearest_before(from);
    if (snap == nullptr) continue;
    resumes[i].time = snap->time;
    for (const CkptRankState& r : snap->ranks) {
      resumes[i].positions.push_back(r.position);
      resumes[i].times.push_back(r.time);
      resumes[i].collective_sites.push_back(r.collective_sites);
    }
    windowed[i].config.resume = &resumes[i];
  }

  result.outcomes = core::sweep(trace, windowed, options);
  for (std::size_t i = 0; i < n; ++i) {
    QueryResult& q = result.windows[i];
    q.from = from;
    q.to = to;
    if (!result.outcomes[i].ok) continue;
    q.result = result.outcomes[i].result;
    q.timelines.resize(static_cast<std::size_t>(trace.nprocs()));
    for (int r = 0; r < trace.nprocs() && r < sinks[i]->nranks(); ++r) {
      q.timelines[static_cast<std::size_t>(r)] = obs::slice(sinks[i]->intervals(r), from, to);
    }
  }
  return result;
}

}  // namespace tir::ckpt
