#include "tit/trace.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "base/error.hpp"
#include "base/string_util.hpp"
#include "tit/validate.hpp"

namespace tir::tit {

namespace {

/// 64 KiB: the MPI eager-mode threshold the paper keys its analysis on.
constexpr double kEagerThreshold = 65536.0;

std::int32_t parse_rank(std::string_view token, std::string_view line) {
  if (!token.empty() && (token.front() == 'p' || token.front() == 'P')) {
    token.remove_prefix(1);
  }
  // to_u64 rejects a leading '-', so negative ranks fail here with context.
  const auto value = str::to_u64(token, "rank in '" + std::string(line) + "'");
  if (value > static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
    throw ParseError("rank " + std::string(token) + " out of range in '" + std::string(line) +
                     "'");
  }
  return static_cast<std::int32_t>(value);
}

double parse_volume(std::string_view token, std::string_view line) {
  const double v = str::to_double(token, "volume in '" + std::string(line) + "'");
  // NaN fails both comparisons below on its own; check it explicitly so the
  // message names the actual problem.
  if (std::isnan(v)) throw ParseError("NaN volume in '" + std::string(line) + "'");
  if (v < 0.0) throw ParseError("negative volume in '" + std::string(line) + "'");
  if (!std::isfinite(v)) throw ParseError("non-finite volume in '" + std::string(line) + "'");
  return v;
}

void expect_tokens(const std::vector<std::string_view>& t, std::size_t lo, std::size_t hi,
                   std::string_view line) {
  if (t.size() < lo || t.size() > hi) {
    throw ParseError("wrong number of fields in '" + std::string(line) + "'");
  }
}

std::string format_volume(double v) {
  // Volumes are counts; print integers exactly, large/fractional compactly.
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && v < 9.2e18) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

const char* action_name(ActionType t) {
  switch (t) {
    case ActionType::Init: return "init";
    case ActionType::Finalize: return "finalize";
    case ActionType::Compute: return "compute";
    case ActionType::Send: return "send";
    case ActionType::Isend: return "isend";
    case ActionType::Recv: return "recv";
    case ActionType::Irecv: return "irecv";
    case ActionType::Wait: return "wait";
    case ActionType::WaitAll: return "waitall";
    case ActionType::Barrier: return "barrier";
    case ActionType::Bcast: return "bcast";
    case ActionType::Reduce: return "reduce";
    case ActionType::AllReduce: return "allreduce";
    case ActionType::AllToAll: return "alltoall";
    case ActionType::AllGather: return "allgather";
    case ActionType::Gather: return "gather";
    case ActionType::Scatter: return "scatter";
  }
  return "?";
}

std::string to_line(const Action& a) {
  // Built with appends, not operator+ chains: one growing buffer instead of
  // a temporary per '+' (and GCC 12's -Wrestrict misfires on the inlined
  // SSO copy of such chains, which -Werror builds would trip over).
  std::string out;
  out += 'p';
  out += std::to_string(a.proc);
  out += ' ';
  out += action_name(a.type);
  const auto add_volume = [&out](double v) {
    out += ' ';
    out += format_volume(v);
  };
  const auto add_partner = [&out](std::int32_t partner) {
    out += " p";
    out += std::to_string(partner);
  };
  switch (a.type) {
    case ActionType::Init:
    case ActionType::Finalize:
    case ActionType::Wait:
    case ActionType::WaitAll:
    case ActionType::Barrier:
      break;
    case ActionType::Compute:
      add_volume(a.volume);
      break;
    case ActionType::Send:
    case ActionType::Isend:
    case ActionType::Irecv:
      add_partner(a.partner);
      add_volume(a.volume);
      break;
    case ActionType::Recv:
      add_partner(a.partner);
      if (a.volume != kNoVolume) add_volume(a.volume);
      break;
    case ActionType::Bcast:
    case ActionType::Gather:
    case ActionType::Scatter:
      add_volume(a.volume);
      if (a.partner >= 0) add_partner(a.partner);
      break;
    case ActionType::Reduce:
      add_volume(a.volume);
      add_volume(a.volume2);
      if (a.partner >= 0) add_partner(a.partner);
      break;
    case ActionType::AllReduce:
    case ActionType::AllToAll:
    case ActionType::AllGather:
      add_volume(a.volume);
      add_volume(a.volume2);
      break;
  }
  return out;
}

Action parse_line(std::string_view line) {
  const auto t = str::split_ws(line);
  if (t.size() < 2) throw ParseError("trace line too short: '" + std::string(line) + "'");
  Action a;
  a.proc = parse_rank(t[0], line);
  const std::string_view verb = t[1];

  if (verb == "init") {
    expect_tokens(t, 2, 2, line);
    a.type = ActionType::Init;
  } else if (verb == "finalize") {
    expect_tokens(t, 2, 2, line);
    a.type = ActionType::Finalize;
  } else if (verb == "compute") {
    expect_tokens(t, 3, 3, line);
    a.type = ActionType::Compute;
    a.volume = parse_volume(t[2], line);
  } else if (verb == "send" || verb == "isend" || verb == "irecv") {
    expect_tokens(t, 4, 4, line);
    a.type = verb == "send" ? ActionType::Send
                            : (verb == "isend" ? ActionType::Isend : ActionType::Irecv);
    a.partner = parse_rank(t[2], line);
    a.volume = parse_volume(t[3], line);
  } else if (verb == "recv") {
    // Old format: "p0 recv p1"; new format (paper §3.3): "p0 recv p1 1240".
    expect_tokens(t, 3, 4, line);
    a.type = ActionType::Recv;
    a.partner = parse_rank(t[2], line);
    a.volume = t.size() == 4 ? parse_volume(t[3], line) : kNoVolume;
  } else if (verb == "wait") {
    expect_tokens(t, 2, 2, line);
    a.type = ActionType::Wait;
  } else if (verb == "waitall") {
    expect_tokens(t, 2, 2, line);
    a.type = ActionType::WaitAll;
  } else if (verb == "barrier") {
    expect_tokens(t, 2, 2, line);
    a.type = ActionType::Barrier;
  } else if (verb == "bcast" || verb == "gather" || verb == "scatter") {
    expect_tokens(t, 3, 4, line);
    a.type = verb == "bcast" ? ActionType::Bcast
                             : (verb == "gather" ? ActionType::Gather : ActionType::Scatter);
    a.volume = parse_volume(t[2], line);
    a.partner = t.size() == 4 ? parse_rank(t[3], line) : 0;
  } else if (verb == "reduce") {
    expect_tokens(t, 4, 5, line);
    a.type = ActionType::Reduce;
    a.volume = parse_volume(t[2], line);
    a.volume2 = parse_volume(t[3], line);
    a.partner = t.size() == 5 ? parse_rank(t[4], line) : 0;
  } else if (verb == "allreduce") {
    expect_tokens(t, 4, 4, line);
    a.type = ActionType::AllReduce;
    a.volume = parse_volume(t[2], line);
    a.volume2 = parse_volume(t[3], line);
  } else if (verb == "alltoall" || verb == "allgather") {
    expect_tokens(t, 4, 4, line);
    a.type = verb == "alltoall" ? ActionType::AllToAll : ActionType::AllGather;
    a.volume = parse_volume(t[2], line);
    a.volume2 = parse_volume(t[3], line);
  } else {
    throw ParseError("unknown action '" + std::string(verb) + "' in '" + std::string(line) +
                     "'");
  }
  return a;
}

const std::vector<Action>& Trace::actions(int proc) const {
  TIR_ASSERT(proc >= 0 && proc < nprocs());
  return per_proc_[static_cast<std::size_t>(proc)];
}

std::vector<Action>& Trace::actions(int proc) {
  TIR_ASSERT(proc >= 0 && proc < nprocs());
  return per_proc_[static_cast<std::size_t>(proc)];
}

void Trace::push(const Action& a) {
  if (a.proc < 0 || a.proc >= nprocs()) {
    throw Error("action rank p" + std::to_string(a.proc) + " out of range (nprocs=" +
                std::to_string(nprocs()) + ")");
  }
  per_proc_[static_cast<std::size_t>(a.proc)].push_back(a);
}

std::size_t Trace::total_actions() const {
  std::size_t n = 0;
  for (const auto& v : per_proc_) n += v.size();
  return n;
}

void add_to_stats(TraceStats& s, const Action& a) {
  ++s.actions;
  switch (a.type) {
    case ActionType::Compute:
      ++s.computes;
      s.compute_instructions += a.volume;
      break;
    case ActionType::Send:
    case ActionType::Isend:
      ++s.p2p_messages;
      s.p2p_bytes += a.volume;
      if (a.volume < kEagerThreshold) s.eager_messages += 1.0;
      break;
    case ActionType::Barrier:
    case ActionType::Bcast:
    case ActionType::Reduce:
    case ActionType::AllReduce:
    case ActionType::AllToAll:
    case ActionType::AllGather:
    case ActionType::Gather:
    case ActionType::Scatter:
      ++s.collectives;
      break;
    default:
      break;
  }
}

TraceStats stats(const Trace& trace) {
  TraceStats s;
  for (int p = 0; p < trace.nprocs(); ++p) {
    for (const Action& a : trace.actions(p)) add_to_stats(s, a);
  }
  return s;
}

Trace parse_trace(std::istream& in, int nprocs) {
  Trace trace(nprocs);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view text = str::trim(raw);
    if (text.empty() || text.front() == '#') continue;
    try {
      trace.push(parse_line(text));
    } catch (const Error& e) {
      throw ParseError("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  return trace;
}

Trace parse_trace_string(const std::string& text, int nprocs) {
  std::istringstream in(text);
  return parse_trace(in, nprocs);
}

std::string write_trace(const Trace& trace, const std::string& dir,
                        const std::string& basename) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string manifest_path = (fs::path(dir) / (basename + ".manifest")).string();
  std::ofstream manifest(manifest_path);
  if (!manifest) throw Error("cannot write manifest: " + manifest_path);
  for (int p = 0; p < trace.nprocs(); ++p) {
    const std::string fname = basename + "_" + std::to_string(p) + ".tit";
    const std::string path = (fs::path(dir) / fname).string();
    std::ofstream out(path);
    if (!out) throw Error("cannot write trace file: " + path);
    for (const Action& a : trace.actions(p)) out << to_line(a) << '\n';
    manifest << fname << '\n';
  }
  return manifest_path;
}

std::vector<std::string> read_manifest(const std::string& manifest_path) {
  std::ifstream manifest(manifest_path);
  if (!manifest) throw Error("cannot open manifest: " + manifest_path);
  std::vector<std::string> files;
  std::string line;
  while (std::getline(manifest, line)) {
    const auto trimmed = str::trim(line);
    if (!trimmed.empty()) files.emplace_back(trimmed);
  }
  if (files.empty()) throw Error("empty manifest: " + manifest_path);
  return files;
}

Trace load_trace(const std::string& manifest_path, int nprocs) {
  namespace fs = std::filesystem;
  const std::vector<std::string> files = read_manifest(manifest_path);
  const fs::path base_dir = fs::path(manifest_path).parent_path();

  const bool shared = files.size() == 1;
  if (shared && nprocs <= 0) {
    throw Error("single-file manifest needs an explicit process count: " + manifest_path);
  }
  const int count = shared ? nprocs : static_cast<int>(files.size());
  if (!shared && nprocs > 0 && nprocs != count) {
    throw Error("manifest lists " + std::to_string(count) + " trace files but " +
                std::to_string(nprocs) + " processes were requested");
  }
  Trace trace(count);
  for (const std::string& f : files) {
    const std::string path = (base_dir / f).string();
    std::ifstream in(path);
    if (!in) throw Error("cannot open trace file: " + path);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
      ++line_no;
      const std::string_view text = str::trim(raw);
      if (text.empty() || text.front() == '#') continue;
      try {
        trace.push(parse_line(text));
      } catch (const Error& e) {
        throw ParseError(f + ":" + std::to_string(line_no) + ": " + e.what());
      }
    }
  }
  return trace;
}

void validate(const Trace& trace) { validate_or_throw(trace); }

}  // namespace tir::tit
