#include "tit/validate.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace tir::tit {

namespace {

bool is_collective(ActionType t) {
  switch (t) {
    case ActionType::Barrier:
    case ActionType::Bcast:
    case ActionType::Reduce:
    case ActionType::AllReduce:
    case ActionType::AllToAll:
    case ActionType::AllGather:
    case ActionType::Gather:
    case ActionType::Scatter:
      return true;
    default:
      return false;
  }
}

bool is_rooted(ActionType t) {
  return t == ActionType::Bcast || t == ActionType::Reduce || t == ActionType::Gather ||
         t == ActionType::Scatter;
}

/// One collective occurrence in a rank's stream, for site-by-site comparison.
struct CollectiveSite {
  ActionType type;
  int root;
  double volume;
  std::ptrdiff_t index;  ///< action index in the issuing rank's stream
};

class Checker {
 public:
  Checker(const Trace& trace, const ValidateOptions& options)
      : trace_(trace), options_(options) {}

  ValidationReport run() {
    report_.nprocs = trace_.nprocs();
    per_rank_collectives_.resize(static_cast<std::size_t>(trace_.nprocs()));
    for (int p = 0; p < trace_.nprocs(); ++p) check_rank(p);
    check_pairs();
    check_collectives();
    return std::move(report_);
  }

 private:
  void add(Severity severity, int rank, std::ptrdiff_t index, std::string message) {
    if (severity == Severity::Error) {
      ++report_.errors;
    } else {
      ++report_.warnings;
    }
    if (report_.issues.size() < options_.max_issues) {
      report_.issues.push_back(
          ValidationIssue{severity, ErrorCode::MalformedTrace, rank, index, std::move(message)});
    }
  }

  void check_volume(double v, int rank, std::ptrdiff_t i, const Action& a, const char* which) {
    if (std::isnan(v) || !std::isfinite(v)) {
      add(Severity::Error, rank, i, std::string("non-finite ") + which + ": " + to_line(a));
    } else if (v < 0.0) {
      add(Severity::Error, rank, i, std::string("negative ") + which + ": " + to_line(a));
    } else if (v > options_.absurd_volume) {
      add(Severity::Warning, rank, i,
          std::string("implausibly large ") + which + ": " + to_line(a));
    }
  }

  void check_rank(int p) {
    bool saw_finalize = false;
    long outstanding = 0;  // nonblocking requests not yet collected
    const std::vector<Action>& seq = trace_.actions(p);
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(seq.size()); ++i) {
      const Action& a = seq[static_cast<std::size_t>(i)];
      ++report_.actions_checked;
      if (saw_finalize) {
        add(Severity::Error, p, i, "action after finalize: " + to_line(a));
        saw_finalize = false;  // report once per finalize, not per trailing action
      }

      // Volume sanity. kNoVolume on a recv is the legal old-format marker.
      if (!(a.type == ActionType::Recv && a.volume == kNoVolume)) {
        check_volume(a.volume, p, i, a, "volume");
      }
      check_volume(a.volume2, p, i, a, "second volume");

      switch (a.type) {
        case ActionType::Send:
        case ActionType::Isend:
        case ActionType::Recv:
        case ActionType::Irecv: {
          if (a.partner < 0 || a.partner >= trace_.nprocs()) {
            add(Severity::Error, p, i, "partner out of range: " + to_line(a));
            break;
          }
          if (a.partner == p) {
            add(Severity::Error, p, i, "self-message: " + to_line(a));
            break;
          }
          const bool is_send = a.type == ActionType::Send || a.type == ActionType::Isend;
          PairTraffic& pair = pairs_[is_send ? std::pair{p, a.partner}
                                             : std::pair{a.partner, p}];
          (is_send ? pair.send_volumes : pair.recv_volumes).push_back(a.volume);
          if (a.type == ActionType::Isend || a.type == ActionType::Irecv) ++outstanding;
          break;
        }
        case ActionType::Wait:
          if (outstanding == 0) {
            add(Severity::Error, p, i, "wait with no outstanding nonblocking request");
          } else {
            --outstanding;
          }
          break;
        case ActionType::WaitAll:
          outstanding = 0;
          break;
        case ActionType::Finalize:
          saw_finalize = true;
          break;
        default:
          break;
      }

      if (is_collective(a.type)) {
        if (is_rooted(a.type) && (a.partner < 0 || a.partner >= trace_.nprocs())) {
          add(Severity::Error, p, i, "root out of range: " + to_line(a));
        }
        per_rank_collectives_[static_cast<std::size_t>(p)].push_back(
            CollectiveSite{a.type, a.partner, a.volume, i});
      }
    }
    if (outstanding > 0) {
      add(Severity::Warning, p, static_cast<std::ptrdiff_t>(seq.size()) - 1,
          std::to_string(outstanding) + " nonblocking request(s) never waited on");
    }
  }

  void check_pairs() {
    for (const auto& [key, pair] : pairs_) {
      // Append-built (not an operator+ chain): GCC 12's -Wrestrict misfires
      // on the inlined SSO copies of such chains under -Werror.
      std::string name = "p";
      name += std::to_string(key.first);
      name += " -> p";
      name += std::to_string(key.second);
      if (pair.send_volumes.size() != pair.recv_volumes.size()) {
        add(Severity::Error, -1, -1,
            "unbalanced p2p traffic " + name + ": " +
                std::to_string(pair.send_volumes.size()) + " send(s) but " +
                std::to_string(pair.recv_volumes.size()) + " recv(s)");
      }
      // MPI non-overtaking makes per-pair matching FIFO: where the new
      // format recorded the recv size, it must agree with the paired send.
      const std::size_t n = std::min(pair.send_volumes.size(), pair.recv_volumes.size());
      for (std::size_t k = 0; k < n; ++k) {
        const double recv = pair.recv_volumes[k];
        if (recv != kNoVolume && recv != pair.send_volumes[k]) {
          add(Severity::Warning, -1, -1,
              "size mismatch on message " + std::to_string(k) + " of " + name + ": sent " +
                  std::to_string(pair.send_volumes[k]) + " bytes, received " +
                  std::to_string(recv));
        }
      }
    }
  }

  void check_collectives() {
    std::size_t sites = 0;
    for (const auto& seq : per_rank_collectives_) sites = std::max(sites, seq.size());
    if (sites == 0) return;

    for (std::size_t k = 0; k < sites; ++k) {
      // The first rank that reaches site k defines the expected operation.
      const CollectiveSite* expected = nullptr;
      int expected_rank = -1;
      for (int p = 0; p < trace_.nprocs(); ++p) {
        const auto& seq = per_rank_collectives_[static_cast<std::size_t>(p)];
        if (k >= seq.size()) {
          add(Severity::Error, p, -1,
              "collective site " + std::to_string(k) + ": p" + std::to_string(p) +
                  " never participates (has only " + std::to_string(seq.size()) +
                  " collective(s)); peers would block forever");
          continue;
        }
        const CollectiveSite& site = seq[k];
        if (expected == nullptr) {
          expected = &site;
          expected_rank = p;
          continue;
        }
        if (site.type != expected->type) {
          add(Severity::Error, p, site.index,
              "collective site " + std::to_string(k) + ": p" + std::to_string(p) + " issues " +
                  action_name(site.type) + " but p" + std::to_string(expected_rank) +
                  " issues " + action_name(expected->type));
          continue;
        }
        if (is_rooted(site.type) && site.root != expected->root) {
          add(Severity::Error, p, site.index,
              "collective site " + std::to_string(k) + " (" + action_name(site.type) +
                  "): root disagrees (p" + std::to_string(p) + " says p" +
                  std::to_string(site.root) + ", p" + std::to_string(expected_rank) +
                  " says p" + std::to_string(expected->root) + ")");
        }
        if (site.volume != expected->volume) {
          add(Severity::Warning, p, site.index,
              "collective site " + std::to_string(k) + " (" + action_name(site.type) +
                  "): volume disagrees (p" + std::to_string(p) + ": " +
                  std::to_string(site.volume) + ", p" + std::to_string(expected_rank) + ": " +
                  std::to_string(expected->volume) + ")");
        }
      }
    }
  }

  struct PairTraffic {
    std::vector<double> send_volumes;  ///< src program order
    std::vector<double> recv_volumes;  ///< dst program order
  };

  const Trace& trace_;
  const ValidateOptions& options_;
  ValidationReport report_;
  std::map<std::pair<int, int>, PairTraffic> pairs_;
  std::vector<std::vector<CollectiveSite>> per_rank_collectives_;
};

}  // namespace

ValidationReport validate_trace(const Trace& trace, const ValidateOptions& options) {
  return Checker(trace, options).run();
}

std::string to_string(const ValidationReport& report) {
  std::string out = "trace validation: ";
  out += std::to_string(report.errors);
  out += " error(s), ";
  out += std::to_string(report.warnings);
  out += " warning(s) over ";
  out += std::to_string(report.actions_checked);
  out += " action(s), ";
  out += std::to_string(report.nprocs);
  out += " rank(s)\n";
  for (const ValidationIssue& issue : report.issues) {
    out += "  [";
    out += issue.severity == Severity::Error ? "error" : "warning";
    out += "] ";
    if (issue.rank >= 0) {
      out += 'p';
      out += std::to_string(issue.rank);
      if (issue.index >= 0) {
        out += " #";
        out += std::to_string(issue.index);
      }
      out += ": ";
    }
    out += issue.message;
    out += '\n';
  }
  const std::size_t total = report.errors + report.warnings;
  if (total > report.issues.size()) {
    out += "  ... ";
    out += std::to_string(total - report.issues.size());
    out += " more issue(s)\n";
  }
  return out;
}

void validate_or_throw(const Trace& trace, const ValidateOptions& options) {
  const ValidationReport report = validate_trace(trace, options);
  if (report.ok()) return;
  for (const ValidationIssue& issue : report.issues) {
    if (issue.severity != Severity::Error) continue;
    std::string what;
    if (issue.rank >= 0) {
      what += 'p';
      what += std::to_string(issue.rank);
      what += ": ";
    }
    what += issue.message;
    if (report.errors > 1) {
      what += " (+";
      what += std::to_string(report.errors - 1);
      what += " more error(s))";
    }
    throw MalformedTraceError(what);
  }
  // errors counted but all capped out of `issues`: still fail loudly.
  throw MalformedTraceError(std::to_string(report.errors) + " validation error(s)");
}

}  // namespace tir::tit
