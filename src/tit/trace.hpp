// Trace containers, parsing, writing, validation and summary statistics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tit/action.hpp"

namespace tir::tit {

/// An in-memory Time-Independent Trace: one action sequence per process.
class Trace {
 public:
  Trace() = default;
  explicit Trace(int nprocs) : per_proc_(static_cast<std::size_t>(nprocs)) {}

  int nprocs() const { return static_cast<int>(per_proc_.size()); }
  const std::vector<Action>& actions(int proc) const;
  std::vector<Action>& actions(int proc);

  /// Append, routing by a.proc. Throws if the rank is out of range.
  void push(const Action& a);

  std::size_t total_actions() const;

 private:
  std::vector<std::vector<Action>> per_proc_;
};

/// Aggregate volumes; what the trace says the run "weighs".
struct TraceStats {
  std::size_t actions = 0;
  std::size_t computes = 0;
  std::size_t p2p_messages = 0;   ///< send+isend actions
  std::size_t collectives = 0;
  double compute_instructions = 0.0;
  double p2p_bytes = 0.0;
  double eager_messages = 0.0;    ///< p2p messages strictly below 64 KiB
};

TraceStats stats(const Trace& trace);

/// Fold one action into running totals: the streaming-friendly building
/// block of stats(), usable without a materialized Trace.
void add_to_stats(TraceStats& s, const Action& a);

/// Parse one trace line. Ranks may be written "p3" or "3".
/// Throws ParseError with the offending text.
Action parse_line(std::string_view line);

/// Parse a whole trace from text: one action per line, '#' comments and
/// blank lines ignored. nprocs fixes the rank count (ranks must be < nprocs).
Trace parse_trace(std::istream& in, int nprocs);
Trace parse_trace_string(const std::string& text, int nprocs);

/// Write one file per process ("<basename>_<rank>.tit") plus a manifest
/// ("<basename>.manifest") listing them, under `dir`. Returns manifest path.
std::string write_trace(const Trace& trace, const std::string& dir,
                        const std::string& basename);

/// Load a trace back through its manifest. A single-entry manifest means all
/// ranks share one file (paper §3.3); `nprocs` must then be given explicitly.
Trace load_trace(const std::string& manifest_path, int nprocs = -1);

/// Read a manifest: the listed trace file names (relative to the manifest's
/// directory), blank lines skipped. Throws on unreadable/empty manifests.
std::vector<std::string> read_manifest(const std::string& manifest_path);

/// Fail-fast structural validation: every send has a matching recv (per
/// ordered pair), collective participation agrees, partners in range,
/// init/finalize discipline. Throws MalformedTraceError describing the
/// first problem. For the full structured report, see tit/validate.hpp.
void validate(const Trace& trace);

}  // namespace tir::tit
