// Time-Independent Trace actions.
//
// A TiT describes an MPI execution purely in terms of volumes (paper §1):
//
//   p0 compute 956140        <- instructions between two MPI calls
//   p0 send p1 1240          <- point-to-point, bytes
//   p0 recv p1 1240          <- the new (SMPI back-end) format carries the
//                               size on recv too (paper §3.3); the old
//                               format omitted it
//   p0 allreduce 4096 977536 <- communication bytes + reduction compute
//
// No timestamps anywhere: that is the whole point, and what lets a trace
// acquired on any mix of machines be replayed on any simulated platform.
#pragma once

#include <cstdint>
#include <string>

namespace tir::tit {

enum class ActionType : std::uint8_t {
  Init,
  Finalize,
  Compute,
  Send,
  Isend,
  Recv,
  Irecv,
  Wait,      ///< wait for the oldest outstanding nonblocking request
  WaitAll,   ///< wait for every outstanding nonblocking request
  Barrier,
  Bcast,
  Reduce,
  AllReduce,
  AllToAll,
  AllGather,
  Gather,
  Scatter,
};

/// Marks "size unknown" on old-format recv actions (paper §3.3 added the
/// size parameter precisely because the old format lacked it).
inline constexpr double kNoVolume = -1.0;

struct Action {
  ActionType type = ActionType::Compute;
  std::int32_t proc = -1;     ///< issuing rank
  std::int32_t partner = -1;  ///< peer rank (p2p) or root (rooted collectives)
  double volume = 0.0;        ///< instructions (compute) or bytes (comms)
  double volume2 = 0.0;       ///< second volume: reduction compute (reduce/
                              ///< allreduce) or recv bytes (alltoall/allgather)

  bool operator==(const Action&) const = default;
};

const char* action_name(ActionType t);

/// Render one action in the trace text format ("p0 send p1 1240").
std::string to_line(const Action& a);

}  // namespace tir::tit
