// Static trace validation: cross-check per-rank action streams BEFORE
// replay, so a malformed trace is a structured report instead of a wedged
// simulator (ISSUE 2; Lagwankar 2024 makes the same point for replay
// clocks: replay tooling is only trustworthy when mismatched or incomplete
// event streams are detected and diagnosed, not silently replayed).
//
// Checks:
//   - rank/partner bounds and self-messages;
//   - per ordered (src, dst) pair: send count == recv count, and, where the
//     new-format recv carries a size, FIFO volume agreement with the sends;
//   - collective participation: every rank issues the same sequence of
//     collective operations (type, root and, for symmetric collectives,
//     communication volume agree at every site);
//   - init/finalize discipline (no actions after finalize);
//   - wait/waitall discipline (no wait without an outstanding nonblocking
//     request; leftover requests at end of stream);
//   - volume sanity (non-finite, negative, absurdly large).
//
// validate_trace() returns everything it found; validate_or_throw() raises
// a MalformedTraceError carrying the first error for fail-fast callers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "tit/trace.hpp"

namespace tir::tit {

enum class Severity : std::uint8_t {
  Warning,  ///< suspicious but replayable (e.g. recv size != send size)
  Error,    ///< the trace cannot describe a real execution; replay will fail
};

/// One finding, anchored to the rank and action index that exposed it
/// (rank/index are -1 for whole-trace findings such as pair imbalances).
struct ValidationIssue {
  Severity severity = Severity::Error;
  ErrorCode code = ErrorCode::MalformedTrace;
  int rank = -1;          ///< issuing rank, or -1
  std::ptrdiff_t index = -1;  ///< action index within the rank's stream, or -1
  std::string message;
};

struct ValidateOptions {
  /// Stop collecting after this many issues (the counters keep counting).
  std::size_t max_issues = 64;
  /// Flag messages above this size/volume as suspicious (bytes/instructions).
  double absurd_volume = 1e15;
};

/// The structured report (docs/robustness.md describes the rendered form).
struct ValidationReport {
  std::vector<ValidationIssue> issues;  ///< first max_issues findings
  std::size_t errors = 0;               ///< total errors found (not capped)
  std::size_t warnings = 0;             ///< total warnings found (not capped)
  std::size_t actions_checked = 0;
  int nprocs = 0;

  bool ok() const { return errors == 0; }
};

ValidationReport validate_trace(const Trace& trace, const ValidateOptions& options = {});

/// Multi-line human-readable rendering ("p3 #42: [error] ...").
std::string to_string(const ValidationReport& report);

/// Fail-fast wrapper: throws MalformedTraceError with the first error (plus
/// the error count) if the report has any; warnings alone pass.
void validate_or_throw(const Trace& trace, const ValidateOptions& options = {});

}  // namespace tir::tit
