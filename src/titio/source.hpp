// ActionSource: the pull interface both replay engines consume.
//
// A replay is per-rank sequential: each simulated rank walks its own action
// stream front to back, never looking ahead and never revisiting.  That
// access pattern is exactly what lets a reader stay bounded-memory, so the
// interface is one per-rank cursor: `next(rank, out)`.  The engines no
// longer care whether the actions live in RAM (MemorySource over the
// classic tit::Trace) or stream off disk a frame at a time (titio::Reader).
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.hpp"
#include "tit/trace.hpp"

namespace tir::titio {

class ActionSource {
 public:
  virtual ~ActionSource() = default;

  virtual int nprocs() const = 0;

  /// Pull `rank`'s next action into `out`; false once that rank's stream is
  /// exhausted. Ranks have independent cursors and may be pulled in any
  /// interleaving (the engines interleave them per simulated event).
  virtual bool next(int rank, tit::Action& out) = 0;

  /// Actions known to exist but not delivered because the source dropped
  /// damaged data (corrupt-frame recovery). Replay surfaces this as
  /// ReplayResult::degraded so callers can distinguish a clean replay from
  /// a best-effort one. Sources without a recovery mode report 0.
  virtual std::uint64_t skipped_actions() const { return 0; }

  /// Reset every rank cursor to the start of the stream so the same source
  /// object can feed another replay.  Single-pass sources (the streaming
  /// titio::Reader) cannot restart and keep the default, which throws
  /// ConfigError.
  virtual void rewind() {
    throw ConfigError(
        "this ActionSource was already consumed by a previous replay and "
        "cannot be rewound; open a fresh source (or use a rewindable one: "
        "MemorySource, SharedTrace cursors)");
  }

  /// Called by the replay session when it starts consuming this source.
  /// The first session streams from wherever the cursors stand; any later
  /// session rewinds first, so reusing an exhausted source either works
  /// (rewindable sources) or fails with ConfigError — never silently
  /// replays zero actions into a bogus 0-second prediction.
  void begin_session() {
    if (session_started_) rewind();
    session_started_ = true;
  }

 private:
  bool session_started_ = false;
};

/// Adapter over a fully materialized Trace: the existing in-memory API,
/// unchanged semantics, zero copies.
class MemorySource final : public ActionSource {
 public:
  explicit MemorySource(const tit::Trace& trace)
      : trace_(trace), pos_(static_cast<std::size_t>(trace.nprocs()), 0) {}

  int nprocs() const override { return trace_.nprocs(); }

  bool next(int rank, tit::Action& out) override {
    const std::vector<tit::Action>& seq = trace_.actions(rank);
    std::size_t& i = pos_[static_cast<std::size_t>(rank)];
    if (i >= seq.size()) return false;
    out = seq[i++];
    return true;
  }

  void rewind() override { pos_.assign(pos_.size(), 0); }

 private:
  const tit::Trace& trace_;
  std::vector<std::size_t> pos_;
};

}  // namespace tir::titio
