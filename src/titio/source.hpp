// ActionSource: the pull interface both replay engines consume.
//
// A replay is per-rank sequential: each simulated rank walks its own action
// stream front to back, never looking ahead and never revisiting.  That
// access pattern is exactly what lets a reader stay bounded-memory, so the
// interface is one per-rank cursor: `next(rank, out)`.  The engines no
// longer care whether the actions live in RAM (MemorySource over the
// classic tit::Trace) or stream off disk a frame at a time (titio::Reader).
#pragma once

#include <cstddef>
#include <vector>

#include "base/error.hpp"
#include "tit/trace.hpp"

namespace tir::titio {

class ActionSource {
 public:
  virtual ~ActionSource() = default;

  virtual int nprocs() const = 0;

  /// Pull `rank`'s next action into `out`; false once that rank's stream is
  /// exhausted. Ranks have independent cursors and may be pulled in any
  /// interleaving (the engines interleave them per simulated event).
  virtual bool next(int rank, tit::Action& out) = 0;

  /// Actions known to exist but not delivered because the source dropped
  /// damaged data (corrupt-frame recovery). Replay surfaces this as
  /// ReplayResult::degraded so callers can distinguish a clean replay from
  /// a best-effort one. Sources without a recovery mode report 0.
  virtual std::uint64_t skipped_actions() const { return 0; }

  /// Reset every rank cursor to the start of the stream so the same source
  /// object can feed another replay.  Single-pass sources (the streaming
  /// titio::Reader) cannot restart and keep the default, which throws
  /// ConfigError.
  virtual void rewind() {
    throw ConfigError(
        "this ActionSource was already consumed by a previous replay and "
        "cannot be rewound; open a fresh source (or use a rewindable one: "
        "MemorySource, SharedTrace cursors)");
  }

  /// Called by the replay session when it starts consuming this source.
  /// The first session streams from wherever the cursors stand; any later
  /// session rewinds first, so reusing an exhausted source either works
  /// (rewindable sources) or fails with ConfigError — never silently
  /// replays zero actions into a bogus 0-second prediction.
  void begin_session() {
    if (session_started_) rewind();
    session_started_ = true;
  }

  /// Position every rank cursor at `positions[rank]` actions from the start
  /// (checkpoint restore; src/ckpt).  The next session then streams the
  /// suffix instead of rewinding — seek() arms exactly one such session.
  /// Sources that cannot reposition keep the default do_seek, which throws
  /// ConfigError.
  void seek(const std::vector<std::uint64_t>& positions) {
    do_seek(positions);
    session_started_ = false;
  }

 protected:
  virtual void do_seek(const std::vector<std::uint64_t>& /*positions*/) {
    throw ConfigError(
        "this ActionSource cannot seek; checkpoint restore needs a "
        "repositionable source (MemorySource, SharedTrace cursors)");
  }

  /// Shared bounds check for repositionable sources.
  static void check_seek(const std::vector<std::uint64_t>& positions, int nprocs,
                         const std::vector<std::size_t>& limits) {
    if (positions.size() != static_cast<std::size_t>(nprocs)) {
      throw ConfigError("seek positions cover " + std::to_string(positions.size()) +
                        " ranks, trace has " + std::to_string(nprocs));
    }
    for (std::size_t r = 0; r < positions.size(); ++r) {
      if (positions[r] > limits[r]) {
        throw ConfigError("seek position " + std::to_string(positions[r]) + " past rank p" +
                          std::to_string(r) + "'s " + std::to_string(limits[r]) + " actions");
      }
    }
  }

 private:
  bool session_started_ = false;
};

/// Adapter over a fully materialized Trace: the existing in-memory API,
/// unchanged semantics, zero copies.
class MemorySource final : public ActionSource {
 public:
  explicit MemorySource(const tit::Trace& trace)
      : trace_(trace), pos_(static_cast<std::size_t>(trace.nprocs()), 0) {
    // Per-rank sequences resolved once: next() is called once per replayed
    // action, and the trace is fully materialized (and must not be mutated
    // while this source reads it), so the lookup would be pure overhead.
    seqs_.reserve(pos_.size());
    for (int r = 0; r < trace.nprocs(); ++r) seqs_.push_back(&trace.actions(r));
  }

  int nprocs() const override { return trace_.nprocs(); }

  bool next(int rank, tit::Action& out) override {
    const std::vector<tit::Action>& seq = *seqs_[static_cast<std::size_t>(rank)];
    std::size_t& i = pos_[static_cast<std::size_t>(rank)];
    if (i >= seq.size()) return false;
    out = seq[i++];
    return true;
  }

  void rewind() override { pos_.assign(pos_.size(), 0); }

 protected:
  void do_seek(const std::vector<std::uint64_t>& positions) override {
    std::vector<std::size_t> limits(pos_.size());
    for (std::size_t r = 0; r < limits.size(); ++r) {
      limits[r] = trace_.actions(static_cast<int>(r)).size();
    }
    check_seek(positions, nprocs(), limits);
    for (std::size_t r = 0; r < pos_.size(); ++r) {
      pos_[r] = static_cast<std::size_t>(positions[r]);
    }
  }

 private:
  const tit::Trace& trace_;
  std::vector<const std::vector<tit::Action>*> seqs_;  // per-rank sequences
  std::vector<std::size_t> pos_;
};

}  // namespace tir::titio
