#include "titio/format.hpp"

#include <bit>
#include <cmath>

#include "base/binio.hpp"
#include "base/error.hpp"

namespace tir::titio {

namespace {

/// Integral, non-negative and exactly representable as both i64 and double:
/// the varint fast path. Everything else ships as a raw double.
bool fits_varint(double v) {
  if (!(v >= 0.0) || v >= 9.2e18) return false;
  return v == static_cast<double>(static_cast<std::int64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

double get_f64(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  if (pos + 8 > size) throw ParseError("truncated double in action payload");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
  pos += 8;
  return std::bit_cast<double>(bits);
}

}  // namespace

void encode_action(std::vector<std::uint8_t>& out, const tit::Action& a) {
  std::uint8_t flags = 0;
  if (a.partner >= 0) flags |= kHasPartner;
  if (a.volume == tit::kNoVolume) {
    flags |= kVolumeNone;
  } else if (a.volume != 0.0) {
    flags |= kHasVolume;
    if (!fits_varint(a.volume)) flags |= kVolumeF64;
  }
  if (a.volume2 != 0.0) {
    flags |= kHasVolume2;
    if (!fits_varint(a.volume2)) flags |= kVolume2F64;
  }
  out.push_back(static_cast<std::uint8_t>(a.type));
  out.push_back(flags);
  if (flags & kHasPartner) binio::put_varint(out, static_cast<std::uint64_t>(a.partner));
  if (flags & kHasVolume) {
    if (flags & kVolumeF64) {
      put_f64(out, a.volume);
    } else {
      binio::put_varint(out, static_cast<std::uint64_t>(a.volume));
    }
  }
  if (flags & kHasVolume2) {
    if (flags & kVolume2F64) {
      put_f64(out, a.volume2);
    } else {
      binio::put_varint(out, static_cast<std::uint64_t>(a.volume2));
    }
  }
}

tit::Action decode_action(const std::uint8_t* payload, std::size_t size, std::size_t& pos,
                          std::int32_t rank) {
  if (pos + 2 > size) throw ParseError("truncated action header in frame payload");
  const std::uint8_t type = payload[pos++];
  const std::uint8_t flags = payload[pos++];
  if (type > static_cast<std::uint8_t>(tit::ActionType::Scatter)) {
    throw ParseError("unknown action type " + std::to_string(type) + " in binary trace");
  }
  if ((flags & kVolumeNone) && (flags & kHasVolume)) {
    throw ParseError("contradictory volume flags in binary trace");
  }
  tit::Action a;
  a.type = static_cast<tit::ActionType>(type);
  a.proc = rank;
  if (flags & kHasPartner) {
    const std::uint64_t partner = binio::get_varint(payload, size, pos);
    if (partner > 0x7FFFFFFFull) throw ParseError("partner rank out of range in binary trace");
    a.partner = static_cast<std::int32_t>(partner);
  }
  if (flags & kVolumeNone) {
    a.volume = tit::kNoVolume;
  } else if (flags & kHasVolume) {
    a.volume = (flags & kVolumeF64)
                   ? get_f64(payload, size, pos)
                   : static_cast<double>(binio::get_varint(payload, size, pos));
  }
  if (flags & kHasVolume2) {
    a.volume2 = (flags & kVolume2F64)
                    ? get_f64(payload, size, pos)
                    : static_cast<double>(binio::get_varint(payload, size, pos));
  }
  return a;
}

}  // namespace tir::titio
