#include "titio/ckpt_records.hpp"

#include <bit>
#include <filesystem>
#include <fstream>

#include "base/binio.hpp"
#include "base/error.hpp"
#include "base/log.hpp"
#include "titio/format.hpp"
#include "titio/reader.hpp"

namespace tir::titio {

namespace {

constexpr std::uint64_t kCkptPayloadVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t take_u64(const std::vector<std::uint8_t>& payload, std::size_t& pos) {
  if (pos + 8 > payload.size()) throw ParseError("checkpoint payload truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(payload[pos + i]) << (8 * i);
  pos += 8;
  return v;
}

double take_f64(const std::vector<std::uint8_t>& payload, std::size_t& pos) {
  return std::bit_cast<double>(take_u64(payload, pos));
}

void validate_block(const CheckpointBlock& block) {
  if (block.nprocs <= 0) {
    throw Error("checkpoint block needs nprocs > 0, got " + std::to_string(block.nprocs));
  }
  for (const TraceCheckpoint& c : block.checkpoints) {
    if (c.ranks.size() != static_cast<std::size_t>(block.nprocs)) {
      throw Error("checkpoint has " + std::to_string(c.ranks.size()) +
                  " rank states, block says nprocs=" + std::to_string(block.nprocs));
    }
  }
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint_payload(const std::vector<CheckpointBlock>& blocks) {
  std::vector<std::uint8_t> out;
  binio::put_varint(out, kCkptPayloadVersion);
  for (const CheckpointBlock& block : blocks) {
    validate_block(block);
    put_u64(out, block.fingerprint);
    binio::put_varint(out, static_cast<std::uint64_t>(block.nprocs));
    binio::put_varint(out, block.checkpoints.size());
    for (const TraceCheckpoint& c : block.checkpoints) {
      put_f64(out, c.time);
      for (const CkptRankState& r : c.ranks) {
        binio::put_varint(out, r.position);
        put_f64(out, r.time);
        binio::put_varint(out, r.collective_sites);
        put_u64(out, r.prefix_hash);
      }
    }
  }
  return out;
}

std::vector<CheckpointBlock> decode_checkpoint_payload(const std::vector<std::uint8_t>& payload) {
  std::vector<CheckpointBlock> blocks;
  std::size_t pos = 0;
  const std::uint64_t version = binio::get_varint(payload.data(), payload.size(), pos);
  if (version != kCkptPayloadVersion) {
    throw ParseError("unsupported checkpoint payload version " + std::to_string(version));
  }
  // Blocks are self-delimiting: decode until the payload is exhausted.
  while (pos < payload.size()) {
    CheckpointBlock block;
    block.fingerprint = take_u64(payload, pos);
    const std::uint64_t nprocs = binio::get_varint(payload.data(), payload.size(), pos);
    if (nprocs == 0 || nprocs > 0x7FFFFFFFu) {
      throw ParseError("bad checkpoint block nprocs " + std::to_string(nprocs));
    }
    block.nprocs = static_cast<int>(nprocs);
    const std::uint64_t count = binio::get_varint(payload.data(), payload.size(), pos);
    block.checkpoints.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      TraceCheckpoint c;
      c.time = take_f64(payload, pos);
      c.ranks.resize(static_cast<std::size_t>(nprocs));
      for (CkptRankState& r : c.ranks) {
        r.position = binio::get_varint(payload.data(), payload.size(), pos);
        r.time = take_f64(payload, pos);
        r.collective_sites = binio::get_varint(payload.data(), payload.size(), pos);
        r.prefix_hash = take_u64(payload, pos);
      }
      block.checkpoints.push_back(std::move(c));
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

std::vector<CheckpointBlock> read_checkpoints(Reader& reader) {
  const std::vector<std::uint8_t> payload = reader.read_checkpoint_payload();
  if (payload.empty()) return {};
  try {
    return decode_checkpoint_payload(payload);
  } catch (const ParseError& e) {
    TIR_LOG(Warn, std::string("ignoring undecodable checkpoint payload (") + e.what() +
                      "); seeks fall back to cold replay");
    return {};
  }
}

std::vector<CheckpointBlock> read_checkpoints(const std::string& path) {
  Reader reader(path);
  return read_checkpoints(reader);
}

void append_checkpoints(const std::string& path, const std::vector<CheckpointBlock>& blocks) {
  if (blocks.empty()) return;
  for (const CheckpointBlock& block : blocks) validate_block(block);

  std::uint16_t version = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t ckpt_offset = 0;
  std::uint64_t total_actions = 0;
  std::vector<CheckpointBlock> merged;
  {
    // Validates header/footer/index and collects what the tail rewrite
    // needs.  A damaged existing checkpoint frame degrades to empty here,
    // so the rewrite below also heals corrupt checkpoint tails.
    Reader reader(path);
    version = reader.version();
    index_offset = reader.index_offset();
    ckpt_offset = reader.ckpt_offset();
    total_actions = reader.total_actions();
    merged = read_checkpoints(reader);
  }
  for (const CheckpointBlock& block : blocks) {
    bool replaced = false;
    for (CheckpointBlock& have : merged) {
      if (have.fingerprint == block.fingerprint) {
        have = block;
        replaced = true;
        break;
      }
    }
    if (!replaced) merged.push_back(block);
  }

  const std::size_t footer_bytes = version == kVersionV1 ? kFooterBytesV1 : kFooterBytesV2;
  const std::uint64_t file_size = std::filesystem::file_size(path);

  std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!io) throw Error("cannot open binary trace for checkpoint append: " + path);

  // The index payload references action-frame offsets only, and those never
  // move — copy the index frame verbatim to its new position.
  std::vector<std::uint8_t> index_raw(
      static_cast<std::size_t>(file_size - footer_bytes - index_offset));
  io.seekg(static_cast<std::streamoff>(index_offset));
  io.read(reinterpret_cast<char*>(index_raw.data()),
          static_cast<std::streamsize>(index_raw.size()));
  if (io.gcount() != static_cast<std::streamsize>(index_raw.size())) {
    throw Error("cannot read index frame for checkpoint append: " + path);
  }

  const std::uint64_t rewrite_pos = ckpt_offset != 0 ? ckpt_offset : index_offset;
  const std::vector<std::uint8_t> payload = encode_checkpoint_payload(merged);
  std::vector<std::uint8_t> tail;
  tail.push_back(kCheckpointFrame);
  binio::put_varint(tail, merged.size());
  binio::put_varint(tail, merged.size());
  binio::put_varint(tail, payload.size());
  tail.insert(tail.end(), payload.begin(), payload.end());
  put_u32(tail, binio::crc32(payload.data(), payload.size()));
  const std::uint64_t new_index_offset = rewrite_pos + tail.size();
  tail.insert(tail.end(), index_raw.begin(), index_raw.end());
  put_u64(tail, new_index_offset);
  put_u64(tail, rewrite_pos);  // ckpt_offset of the v2 footer
  put_u64(tail, total_actions);
  put_u32(tail, kEndMagic);

  io.seekp(static_cast<std::streamoff>(rewrite_pos));
  io.write(reinterpret_cast<const char*>(tail.data()), static_cast<std::streamsize>(tail.size()));
  if (version == kVersionV1) {
    // Upgrade in place: only the version field changes, after the v2 tail
    // is fully written.
    std::vector<std::uint8_t> v2;
    put_u16(v2, kVersion);
    io.seekp(4);
    io.write(reinterpret_cast<const char*>(v2.data()), static_cast<std::streamsize>(v2.size()));
  }
  io.flush();
  if (!io) throw Error("checkpoint append failed on binary trace: " + path);
  io.close();

  const std::uint64_t new_size = rewrite_pos + tail.size();
  if (new_size < file_size) std::filesystem::resize_file(path, new_size);
}

}  // namespace tir::titio
