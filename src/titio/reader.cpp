#include "titio/reader.hpp"

#include <algorithm>
#include <array>

#include "base/binio.hpp"
#include "base/error.hpp"
#include "base/log.hpp"

namespace tir::titio {

namespace {

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Actually release a vector's storage (`v = {}` and clear() keep capacity).
void release(std::vector<std::uint8_t>& v) { std::vector<std::uint8_t>().swap(v); }

}  // namespace

Reader::Reader(const std::string& path, ReaderOptions options)
    : in_(path, std::ios::binary), path_(path), options_(options) {
  if (!in_) throw Error("cannot open binary trace: " + path);
  in_.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(in_.tellg());
  if (file_size_ < kHeaderBytes + kFooterBytes) {
    throw CorruptFrameError(
        "binary trace too short (" + std::to_string(file_size_) + " bytes): " + path,
        file_size_);
  }

  std::array<std::uint8_t, kHeaderBytes> header{};
  in_.seekg(0);
  in_.read(reinterpret_cast<char*>(header.data()), header.size());
  if (!in_) throw ParseError("cannot read binary trace header: " + path);
  if (get_u32(header.data()) != kMagic) {
    throw ParseError("not a TITB binary trace (bad magic): " + path);
  }
  version_ = get_u16(header.data() + 4);
  if (version_ != kVersion && version_ != kVersionV1) {
    throw ParseError("unsupported TITB version " + std::to_string(version_) + " (expected " +
                     std::to_string(kVersionV1) + " or " + std::to_string(kVersion) + "): " +
                     path);
  }
  const std::uint32_t nprocs = get_u32(header.data() + 8);
  if (nprocs == 0 || nprocs > 0x7FFFFFFFu) {
    throw ParseError("bad process count " + std::to_string(nprocs) + ": " + path);
  }
  nprocs_ = static_cast<int>(nprocs);

  // v1 footer: index_offset u64, total_actions u64, end magic u32.
  // v2 footer: index_offset u64, ckpt_offset u64, total_actions u64, magic.
  const std::size_t footer_bytes = version_ == kVersionV1 ? kFooterBytesV1 : kFooterBytesV2;
  if (file_size_ < kHeaderBytes + footer_bytes) {
    throw CorruptFrameError(
        "binary trace too short for its footer (" + std::to_string(file_size_) +
            " bytes): " + path,
        file_size_);
  }
  std::array<std::uint8_t, kFooterBytesV2> footer{};
  in_.seekg(static_cast<std::streamoff>(file_size_ - footer_bytes));
  in_.read(reinterpret_cast<char*>(footer.data()), static_cast<std::streamsize>(footer_bytes));
  if (!in_) throw ParseError("cannot read binary trace footer: " + path);
  if (get_u32(footer.data() + footer_bytes - 4) != kEndMagic) {
    // The footer is the resync anchor: without it there is no index and no
    // recovery, so this is a typed corruption even in recover mode.
    throw CorruptFrameError("truncated binary trace (missing end marker): " + path,
                            file_size_ - footer_bytes);
  }
  index_offset_ = get_u64(footer.data());
  if (version_ == kVersionV1) {
    total_actions_ = get_u64(footer.data() + 8);
  } else {
    ckpt_offset_ = get_u64(footer.data() + 8);
    total_actions_ = get_u64(footer.data() + 16);
  }
  const std::uint64_t index_offset = index_offset_;
  if (index_offset < kHeaderBytes || index_offset >= file_size_ - footer_bytes) {
    throw CorruptFrameError("corrupt index offset in binary trace: " + path,
                            file_size_ - footer_bytes);
  }
  if (ckpt_offset_ != 0 && (ckpt_offset_ < kHeaderBytes || ckpt_offset_ >= index_offset)) {
    throw CorruptFrameError("corrupt checkpoint offset in binary trace: " + path,
                            file_size_ - footer_bytes);
  }

  // The index frame spans [index_offset, file_size - footer).
  const std::size_t index_span = static_cast<std::size_t>(file_size_ - footer_bytes - index_offset);
  std::vector<std::uint8_t> raw(index_span);
  in_.seekg(static_cast<std::streamoff>(index_offset));
  in_.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
  if (!in_) throw ParseError("cannot read binary trace index: " + path);

  std::size_t pos = 0;
  if (raw[pos++] != kIndexFrame) {
    throw CorruptFrameError("corrupt index frame kind: " + path, index_offset);
  }
  std::uint64_t entries = 0;
  std::uint64_t entries2 = 0;
  std::uint64_t payload_bytes = 0;
  try {
    entries = binio::get_varint(raw.data(), raw.size(), pos);
    entries2 = binio::get_varint(raw.data(), raw.size(), pos);
    payload_bytes = binio::get_varint(raw.data(), raw.size(), pos);
  } catch (const ParseError&) {
    throw CorruptFrameError("index preamble truncated: " + path, index_offset);
  }
  if (entries != entries2 || pos + payload_bytes + 4 != raw.size()) {
    throw CorruptFrameError("corrupt index frame in binary trace: " + path, index_offset);
  }
  const std::uint32_t want_crc = get_u32(raw.data() + pos + payload_bytes);
  if (binio::crc32(raw.data() + pos, static_cast<std::size_t>(payload_bytes)) != want_crc) {
    throw CorruptFrameError("index frame CRC mismatch: " + path, index_offset);
  }

  of_rank_.resize(static_cast<std::size_t>(nprocs_));
  cursors_.resize(static_cast<std::size_t>(nprocs_));
  skipped_of_.resize(static_cast<std::size_t>(nprocs_), 0);
  frames_.reserve(static_cast<std::size_t>(entries));
  std::size_t p = pos;
  const std::size_t payload_end = pos + static_cast<std::size_t>(payload_bytes);
  std::uint64_t prev_offset = 0;
  std::uint64_t indexed_actions = 0;
  try {
    for (std::uint64_t i = 0; i < entries; ++i) {
      FrameRef f;
      const std::uint64_t rank = binio::get_varint(raw.data(), payload_end, p);
      f.offset = prev_offset + binio::get_varint(raw.data(), payload_end, p);
      f.actions = binio::get_varint(raw.data(), payload_end, p);
      f.payload_bytes = binio::get_varint(raw.data(), payload_end, p);
      prev_offset = f.offset;
      if (rank >= nprocs) {
        throw CorruptFrameError("index entry rank p" + std::to_string(rank) + " out of range: " +
                                    path,
                                index_offset);
      }
      if (f.offset < kHeaderBytes || f.offset + f.payload_bytes + 4 > index_offset) {
        throw CorruptFrameError("index entry offset out of bounds: " + path, index_offset);
      }
      f.rank = static_cast<std::uint32_t>(rank);
      indexed_actions += f.actions;
      of_rank_[rank].push_back(frames_.size());
      frames_.push_back(f);
    }
  } catch (const CorruptFrameError&) {
    throw;  // already typed with the index offset
  } catch (const ParseError&) {
    // A varint ran past the payload: the index itself is truncated
    // mid-entry.  The index is the resync anchor, so there is nothing to
    // recover with — surface a typed corruption with the damage's byte
    // offset even in recover mode, never a bare parse error (or a loop).
    throw CorruptFrameError("index truncated mid-entry: " + path, index_offset);
  }
  if (p != payload_end) {
    throw CorruptFrameError("trailing bytes in binary trace index: " + path, index_offset);
  }
  if (indexed_actions != total_actions_) {
    throw CorruptFrameError("index action count disagrees with footer: " + path, index_offset);
  }
}

std::uint64_t Reader::actions_of(int rank) const {
  TIR_ASSERT(rank >= 0 && rank < nprocs_);
  std::uint64_t n = 0;
  for (const std::size_t f : of_rank_[static_cast<std::size_t>(rank)]) n += frames_[f].actions;
  return n;
}

std::uint64_t Reader::skipped_actions_of(int rank) const {
  TIR_ASSERT(rank >= 0 && rank < nprocs_);
  return skipped_of_[static_cast<std::size_t>(rank)];
}

void Reader::count_skip(int rank, std::uint64_t actions) {
  ++skipped_frames_;
  skipped_actions_ += actions;
  skipped_of_[static_cast<std::size_t>(rank)] += actions;
}

void Reader::account(std::ptrdiff_t delta) {
  buffered_ = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(buffered_) + delta);
  peak_buffered_ = std::max(peak_buffered_, buffered_);
}

void Reader::drop_prefetches() {
  for (Cursor& cursor : cursors_) {
    if (!cursor.has_prefetch) continue;
    account(-static_cast<std::ptrdiff_t>(cursor.prefetched.capacity()));
    release(cursor.prefetched);
    cursor.has_prefetch = false;
  }
}

void Reader::read_payload(const FrameRef& frame, std::vector<std::uint8_t>& payload) {
  // Re-parse the frame preamble and cross-check it against the index: a
  // frame that moved or shrank means either side is corrupt.
  std::array<std::uint8_t, kMaxFramePreamble> preamble{};
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(frame.offset));
  const std::size_t want =
      std::min<std::size_t>(preamble.size(), static_cast<std::size_t>(file_size_ - frame.offset));
  in_.read(reinterpret_cast<char*>(preamble.data()), static_cast<std::streamsize>(want));
  if (in_.gcount() != static_cast<std::streamsize>(want)) {
    throw CorruptFrameError("truncated frame: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }
  std::size_t pos = 0;
  if (preamble[pos++] != kActionFrame) {
    throw CorruptFrameError("bad frame kind: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }
  std::uint64_t rank = 0, actions = 0, payload_bytes = 0;
  try {
    rank = binio::get_varint(preamble.data(), want, pos);
    actions = binio::get_varint(preamble.data(), want, pos);
    payload_bytes = binio::get_varint(preamble.data(), want, pos);
  } catch (const Error&) {
    throw CorruptFrameError("unreadable frame preamble: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }
  if (rank != frame.rank || actions != frame.actions || payload_bytes != frame.payload_bytes) {
    throw CorruptFrameError("frame disagrees with index: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }

  payload.resize(static_cast<std::size_t>(payload_bytes) + 4);  // payload + CRC
  in_.seekg(static_cast<std::streamoff>(frame.offset + pos));
  in_.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(payload.size()));
  if (in_.gcount() != static_cast<std::streamsize>(payload.size())) {
    throw CorruptFrameError("truncated frame payload: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }
  const std::uint32_t want_crc = get_u32(payload.data() + payload_bytes);
  payload.resize(static_cast<std::size_t>(payload_bytes));
  if (binio::crc32(payload.data(), payload.size()) != want_crc) {
    throw CorruptFrameError("frame CRC mismatch: " + path_, frame.offset,
                            static_cast<int>(frame.rank));
  }
}

bool Reader::advance_frame(int rank, Cursor& cursor) {
  const std::vector<std::size_t>& list = of_rank_[static_cast<std::size_t>(rank)];
  // The loop only repeats in recover mode, stepping over corrupt frames:
  // the index (validated at open) is the resync anchor, so "skip" is simply
  // "try the rank's next indexed frame".
  while (cursor.next_frame < list.size()) {
    const FrameRef& frame = frames_[list[cursor.next_frame++]];

    // Invariant: buffered_ is the sum of payload+prefetched capacities over
    // every cursor.
    account(-static_cast<std::ptrdiff_t>(cursor.payload.capacity()));
    if (cursor.has_prefetch) {
      // The prefetched buffer becomes the current one; its bytes stay counted.
      cursor.payload.swap(cursor.prefetched);
      release(cursor.prefetched);
      cursor.has_prefetch = false;
    } else {
      release(cursor.payload);
      // Mandatory load: if the budget is exhausted, reclaim every cursor's
      // prefetched frame first (those can be re-read on demand; the current
      // frame cannot wait).
      if (buffered_ + frame.payload_bytes + 4 > options_.buffer_bytes) drop_prefetches();
      try {
        read_payload(frame, cursor.payload);
      } catch (const CorruptFrameError&) {
        if (!options_.recover) throw;
        release(cursor.payload);
        count_skip(rank, frame.actions);
        continue;
      }
      account(static_cast<std::ptrdiff_t>(cursor.payload.capacity()));
    }
    cursor.pos = 0;
    cursor.remaining = frame.actions;
    cursor.batch.clear();
    cursor.batch_pos = 0;
    cursor.defer = nullptr;
    cursor.trailing = false;

    // Prefetch the following frame while the disk is warm, budget permitting.
    if (cursor.next_frame < list.size()) {
      const FrameRef& upcoming = frames_[list[cursor.next_frame]];
      if (buffered_ + upcoming.payload_bytes + 4 <= options_.buffer_bytes) {
        try {
          read_payload(upcoming, cursor.prefetched);
          cursor.has_prefetch = true;
          account(static_cast<std::ptrdiff_t>(cursor.prefetched.capacity()));
        } catch (const CorruptFrameError&) {
          if (!options_.recover) throw;
          // Leave it un-prefetched: its mandatory load above does the
          // skip accounting exactly once.
          release(cursor.prefetched);
          cursor.has_prefetch = false;
        }
      }
    }
    return true;
  }
  return false;
}

void Reader::fill_batch(int rank, Cursor& cursor) {
  cursor.batch.clear();
  cursor.batch_pos = 0;
  if (cursor.remaining == 0) return;
  const std::uint64_t want = std::min<std::uint64_t>(
      cursor.remaining, std::max<std::size_t>(options_.decode_batch, 1));
  try {
    for (std::uint64_t i = 0; i < want; ++i) {
      cursor.batch.push_back(decode_action(cursor.payload.data(), cursor.payload.size(),
                                           cursor.pos, static_cast<std::int32_t>(rank)));
    }
  } catch (const Error&) {
    // Keep the cleanly decoded prefix; the error surfaces once it is served.
    cursor.defer = std::current_exception();
  }
  // Decoded the frame's final action with bytes left over: flag it so the
  // trailing-bytes diagnostic fires at that action's delivery, exactly where
  // unbatched decoding reported it.
  if (cursor.defer == nullptr && cursor.batch.size() == cursor.remaining &&
      cursor.pos != cursor.payload.size()) {
    cursor.trailing = true;
  }
}

bool Reader::next(int rank, tit::Action& out) {
  if (rank < 0 || rank >= nprocs_) {
    throw Error("rank p" + std::to_string(rank) + " out of range (nprocs=" +
                std::to_string(nprocs_) + "): " + path_);
  }
  Cursor& cursor = cursors_[static_cast<std::size_t>(rank)];
  for (;;) {
    if (cursor.batch_pos < cursor.batch.size()) {
      out = cursor.batch[cursor.batch_pos++];
      --cursor.remaining;
      if (cursor.remaining == 0 && cursor.trailing) {
        cursor.trailing = false;
        if (!options_.recover) {
          throw ParseError("frame payload size disagrees with its action count (rank p" +
                           std::to_string(rank) + "): " + path_);
        }
        // Recovery: the delivered actions decoded cleanly; note the frame as
        // damaged (trailing bytes) without retracting them.
        ++skipped_frames_;
      }
      return true;
    }
    if (cursor.defer != nullptr) {
      // The CRC passed but the payload stopped decoding (a writer bug or a
      // collision-masked corruption) right after the actions already served:
      // strict mode propagates (and keeps propagating on further calls),
      // recovery abandons the rest of this frame and resyncs to the next one.
      if (!options_.recover) std::rethrow_exception(cursor.defer);
      cursor.defer = nullptr;
      count_skip(rank, cursor.remaining);
      cursor.remaining = 0;
    }
    if (cursor.remaining == 0) {
      if (!advance_frame(rank, cursor)) {
        // Stream exhausted: release this cursor's buffers.
        account(-static_cast<std::ptrdiff_t>(cursor.payload.capacity() +
                                             cursor.prefetched.capacity()));
        release(cursor.payload);
        release(cursor.prefetched);
        std::vector<tit::Action>().swap(cursor.batch);
        cursor.batch_pos = 0;
        return false;
      }
    }
    fill_batch(rank, cursor);
  }
}

std::uint64_t Reader::content_hash() {
  // Domain-tagged so a TITB fingerprint can never collide with the
  // decoded-action fingerprint of a text trace (titio::hash_actions).
  std::uint64_t h = binio::mix64(binio::kHashSeed, kMagic);
  h = binio::mix64(h, static_cast<std::uint64_t>(nprocs_));
  h = binio::mix64(h, total_actions_);
  std::array<std::uint8_t, kMaxFramePreamble> preamble{};
  for (const FrameRef& frame : frames_) {
    h = binio::mix64(h, frame.rank);
    h = binio::mix64(h, frame.actions);
    // The stored CRC sits right after the payload; find it by re-parsing the
    // preamble length.  An unparseable preamble (possible under
    // ReaderOptions::recover, whose loads skip such frames) is folded in as
    // its index entry instead — deterministic either way.
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(frame.offset));
    const std::size_t want = std::min<std::size_t>(
        preamble.size(), static_cast<std::size_t>(file_size_ - frame.offset));
    in_.read(reinterpret_cast<char*>(preamble.data()), static_cast<std::streamsize>(want));
    std::uint32_t crc = 0;
    bool have_crc = false;
    if (in_.gcount() == static_cast<std::streamsize>(want) && want > 0 &&
        preamble[0] == kActionFrame) {
      try {
        std::size_t pos = 1;
        binio::get_varint(preamble.data(), want, pos);  // rank
        binio::get_varint(preamble.data(), want, pos);  // action count
        binio::get_varint(preamble.data(), want, pos);  // payload size
        const std::uint64_t crc_at = frame.offset + pos + frame.payload_bytes;
        if (crc_at + 4 <= file_size_) {
          std::array<std::uint8_t, 4> raw{};
          in_.clear();
          in_.seekg(static_cast<std::streamoff>(crc_at));
          in_.read(reinterpret_cast<char*>(raw.data()), 4);
          if (in_.gcount() == 4) {
            crc = get_u32(raw.data());
            have_crc = true;
          }
        }
      } catch (const Error&) {
        // fall through to the index-entry fold below
      }
    }
    h = binio::mix64(h, have_crc ? crc : binio::mix64(frame.offset, frame.payload_bytes));
  }
  return h;
}

std::vector<std::uint8_t> Reader::read_checkpoint_payload() {
  if (ckpt_offset_ == 0) return {};
  // CheckpointFrame := 'C' u8, block_count varint (x2), payload_size varint,
  // payload, crc32.  Never fatal: checkpoints only accelerate seeks, so any
  // damage degrades to "no checkpoints" with a warning instead of throwing.
  const auto fail = [this](const std::string& why) {
    TIR_LOG(Warn, "ignoring damaged checkpoint frame in " + path_ + " (" + why +
                      "); seeks fall back to cold replay");
    return std::vector<std::uint8_t>{};
  };
  std::array<std::uint8_t, kMaxFramePreamble> preamble{};
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ckpt_offset_));
  const std::size_t want = std::min<std::size_t>(
      preamble.size(), static_cast<std::size_t>(file_size_ - ckpt_offset_));
  in_.read(reinterpret_cast<char*>(preamble.data()), static_cast<std::streamsize>(want));
  if (in_.gcount() != static_cast<std::streamsize>(want)) return fail("truncated preamble");
  std::size_t pos = 0;
  if (preamble[pos++] != kCheckpointFrame) return fail("bad frame kind");
  std::uint64_t blocks = 0, blocks2 = 0, payload_bytes = 0;
  try {
    blocks = binio::get_varint(preamble.data(), want, pos);
    blocks2 = binio::get_varint(preamble.data(), want, pos);
    payload_bytes = binio::get_varint(preamble.data(), want, pos);
  } catch (const Error&) {
    return fail("unreadable preamble");
  }
  if (blocks != blocks2) return fail("block count mismatch");
  if (ckpt_offset_ + pos + payload_bytes + 4 > file_size_) return fail("payload out of bounds");
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_bytes) + 4);
  in_.seekg(static_cast<std::streamoff>(ckpt_offset_ + pos));
  in_.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(payload.size()));
  if (in_.gcount() != static_cast<std::streamsize>(payload.size())) {
    return fail("truncated payload");
  }
  const std::uint32_t want_crc = get_u32(payload.data() + payload_bytes);
  payload.resize(static_cast<std::size_t>(payload_bytes));
  if (binio::crc32(payload.data(), payload.size()) != want_crc) return fail("CRC mismatch");
  return payload;
}

void Reader::verify() {
  std::vector<std::uint8_t> payload;
  for (const FrameRef& frame : frames_) {
    read_payload(frame, payload);
    std::size_t pos = 0;
    for (std::uint64_t i = 0; i < frame.actions; ++i) {
      decode_action(payload.data(), payload.size(), pos, static_cast<std::int32_t>(frame.rank));
    }
    if (pos != payload.size()) {
      throw ParseError("frame at offset " + std::to_string(frame.offset) +
                       " has trailing bytes: " + path_);
    }
  }
}

bool is_binary_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<std::uint8_t, 4> magic{};
  in.read(reinterpret_cast<char*>(magic.data()), magic.size());
  return in.gcount() == 4 && get_u32(magic.data()) == kMagic;
}

tit::Trace read_binary_trace(const std::string& path) {
  Reader reader(path);
  tit::Trace trace(reader.nprocs());
  tit::Action a;
  for (int r = 0; r < reader.nprocs(); ++r) {
    while (reader.next(r, a)) trace.push(a);
  }
  return trace;
}

}  // namespace tir::titio
