// Bounded-memory streaming reader of TITB binary traces (format.hpp).
//
// On open, the reader loads only the header and the index (a few bytes per
// frame); action payloads stay on disk.  Each rank has an independent
// cursor that decodes the current frame in place and, budget permitting,
// prefetches the raw bytes of its next frame so the hot path rarely waits
// on a cold seek.  Peak memory is index + at most two frames per rank and
// is further capped by ReaderOptions::buffer_bytes: when the budget is
// exhausted, cursors simply skip the prefetch and load frames on demand.
#pragma once

#include <cstdint>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "titio/format.hpp"
#include "titio/source.hpp"

namespace tir::titio {

struct ReaderOptions {
  /// Soft budget for buffered frame payloads across every rank cursor.
  /// At minimum one frame per *active* rank is held regardless (a cursor
  /// cannot serve actions without its current frame).
  std::size_t buffer_bytes = 1u << 20;
  /// Actions decoded per batch from the current frame.  next() serves out of
  /// the decoded batch, so the varint decode loop and its error handling run
  /// once per `decode_batch` actions instead of once per action.  Observable
  /// behavior (delivered actions, thrown errors, recovery accounting) is
  /// identical for any value; 1 reproduces unbatched decoding.  The batch
  /// buffer (decode_batch Actions per rank) is not counted against
  /// buffer_bytes.  Values < 1 are treated as 1.
  std::size_t decode_batch = 64;
  /// Best-effort mode: on a corrupt action frame (CRC mismatch, truncation,
  /// index disagreement), resync to the rank's next frame via the
  /// end-of-file index instead of throwing, and count what was dropped
  /// (skipped_frames()/skipped_actions()).  The header, footer and index
  /// must still be intact — they are the resync anchor; damage there throws
  /// CorruptFrameError even in this mode.  Default is strict: any damage
  /// throws CorruptFrameError with the byte offset of the bad frame.
  bool recover = false;
};

class Reader final : public ActionSource {
 public:
  /// Opens and validates header, footer and index. Throws
  /// tir::CorruptFrameError on truncation or damage (with the byte offset),
  /// tir::ParseError on a non-TITB file or unsupported version.
  explicit Reader(const std::string& path, ReaderOptions options = {});

  int nprocs() const override { return nprocs_; }
  bool next(int rank, tit::Action& out) override;

  std::uint64_t total_actions() const { return total_actions_; }
  /// TITB format version of the file (1 or 2; format.hpp).
  std::uint16_t version() const { return version_; }
  /// File offset of the checkpoint frame; 0 when the file has none (always
  /// 0 for v1 files).
  std::uint64_t ckpt_offset() const { return ckpt_offset_; }
  /// File offset of the index frame (tail rewrites start at
  /// min(ckpt_offset, index_offset); ckpt_records.hpp).
  std::uint64_t index_offset() const { return index_offset_; }
  /// CRC-validated payload of the checkpoint frame, or empty when the file
  /// carries none.  A damaged checkpoint frame returns empty too (with a
  /// Warn log line): checkpoints are an accelerator, never a load blocker.
  std::vector<std::uint8_t> read_checkpoint_payload();
  std::uint64_t actions_of(int rank) const;
  std::size_t frame_count() const { return frames_.size(); }
  /// The index, in file order (tooling: offsets, per-frame action counts).
  const std::vector<FrameRef>& frames() const { return frames_; }

  // --- corrupt-frame recovery accounting (ReaderOptions::recover) ---------
  /// Frames dropped (or abandoned mid-decode) so far.
  std::uint64_t skipped_frames() const { return skipped_frames_; }
  /// Actions lost to dropped frames, total and per rank.
  std::uint64_t skipped_actions() const override { return skipped_actions_; }
  std::uint64_t skipped_actions_of(int rank) const;

  /// Currently buffered payload bytes across all cursors.
  std::size_t buffered_bytes() const { return buffered_; }
  /// High-water mark of buffered_bytes() since open.
  std::size_t peak_buffered_bytes() const { return peak_buffered_; }

  /// Full integrity pass: re-reads every frame in file order, verifies each
  /// CRC and decodes every action. Independent of the streaming cursors.
  /// Throws on the first corrupt frame.
  void verify();

  /// Content fingerprint of the trace as stored: the header fields plus every
  /// frame's (rank, action count, stored CRC-32) folded through binio::mix64
  /// in file order.  Reuses the CRCs the writer already paid for, so the hash
  /// reads ~4 bytes per frame instead of re-hashing the payloads.  Stable
  /// across processes — it is the service cache key for TITB traces
  /// (docs/service.md).  Independent of the streaming cursors.
  std::uint64_t content_hash();

 private:
  struct Cursor {
    std::vector<std::uint8_t> payload;     ///< current frame, being decoded
    std::size_t pos = 0;                   ///< decode position in payload
    std::uint64_t remaining = 0;           ///< actions of current frame not yet delivered
    std::size_t next_frame = 0;            ///< index into frames-of-this-rank
    std::vector<std::uint8_t> prefetched;  ///< next frame's payload, CRC-checked
    bool has_prefetch = false;

    // Batched decode (ReaderOptions::decode_batch): actions decoded ahead
    // of delivery from the current frame.  `defer` holds a decode error hit
    // while filling the batch, re-raised only once the cleanly decoded
    // prefix has been served — exactly when unbatched decoding would have
    // hit it.  `trailing` likewise defers the trailing-bytes check to the
    // delivery of the frame's last action.
    std::vector<tit::Action> batch;
    std::size_t batch_pos = 0;
    std::exception_ptr defer;
    bool trailing = false;
  };

  void read_payload(const FrameRef& frame, std::vector<std::uint8_t>& payload);
  bool advance_frame(int rank, Cursor& cursor);
  void fill_batch(int rank, Cursor& cursor);
  void account(std::ptrdiff_t delta);
  void drop_prefetches();
  void count_skip(int rank, std::uint64_t actions);

  std::ifstream in_;
  std::string path_;
  ReaderOptions options_;
  int nprocs_ = 0;
  std::uint16_t version_ = 0;
  std::uint64_t ckpt_offset_ = 0;
  std::uint64_t index_offset_ = 0;
  std::uint64_t total_actions_ = 0;
  std::uint64_t file_size_ = 0;
  std::vector<FrameRef> frames_;                  ///< file order
  std::vector<std::vector<std::size_t>> of_rank_;  ///< frame indices per rank
  std::vector<Cursor> cursors_;
  std::size_t buffered_ = 0;
  std::size_t peak_buffered_ = 0;
  std::uint64_t skipped_frames_ = 0;
  std::uint64_t skipped_actions_ = 0;
  std::vector<std::uint64_t> skipped_of_;  ///< per-rank skipped actions
};

/// True if `path` starts with the TITB magic (cheap format sniff).
bool is_binary_trace(const std::string& path);

/// Materialize a whole binary trace (convenience for small files / tests).
tit::Trace read_binary_trace(const std::string& path);

}  // namespace tir::titio
