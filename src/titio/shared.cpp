#include "titio/shared.hpp"

#include <bit>

#include "base/binio.hpp"

namespace tir::titio {

std::uint64_t hash_actions(const tit::Trace& trace) {
  // Domain tag 'T' keeps decoded-action fingerprints disjoint from the
  // TITB-file fingerprints of Reader::content_hash (tagged with the magic).
  std::uint64_t h = binio::mix64(binio::kHashSeed, 'T');
  h = binio::mix64(h, static_cast<std::uint64_t>(trace.nprocs()));
  for (int r = 0; r < trace.nprocs(); ++r) {
    const std::vector<tit::Action>& seq = trace.actions(r);
    h = binio::mix64(h, seq.size());
    for (const tit::Action& a : seq) {
      h = binio::mix64(h, static_cast<std::uint64_t>(a.type));
      h = binio::mix64(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(a.partner)));
      h = binio::mix64(h, std::bit_cast<std::uint64_t>(a.volume));
      h = binio::mix64(h, std::bit_cast<std::uint64_t>(a.volume2));
    }
  }
  return h;
}

SharedTrace::SharedTrace(std::shared_ptr<const tit::Trace> trace) : trace_(std::move(trace)) {
  if (trace_ == nullptr) throw ConfigError("SharedTrace constructed from a null trace");
  content_hash_ = hash_actions(*trace_);
}

SharedTrace SharedTrace::load(const std::string& path, ReaderOptions options, int nprocs) {
  if (!is_binary_trace(path)) {
    auto trace = std::make_shared<const tit::Trace>(tit::load_trace(path, nprocs));
    const std::uint64_t hash = hash_actions(*trace);
    return SharedTrace(std::move(trace), 0, hash);
  }
  Reader reader(path, options);
  const std::uint64_t hash = reader.content_hash();
  tit::Trace trace(reader.nprocs());
  tit::Action a;
  for (int r = 0; r < reader.nprocs(); ++r) {
    while (reader.next(r, a)) trace.push(a);
  }
  return SharedTrace(std::make_shared<const tit::Trace>(std::move(trace)),
                     reader.skipped_actions(), hash);
}

}  // namespace tir::titio
