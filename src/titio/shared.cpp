#include "titio/shared.hpp"

namespace tir::titio {

SharedTrace::SharedTrace(std::shared_ptr<const tit::Trace> trace) : trace_(std::move(trace)) {
  if (trace_ == nullptr) throw ConfigError("SharedTrace constructed from a null trace");
}

SharedTrace SharedTrace::load(const std::string& path, ReaderOptions options, int nprocs) {
  if (!is_binary_trace(path)) {
    return SharedTrace(std::make_shared<const tit::Trace>(tit::load_trace(path, nprocs)), 0);
  }
  Reader reader(path, options);
  tit::Trace trace(reader.nprocs());
  tit::Action a;
  for (int r = 0; r < reader.nprocs(); ++r) {
    while (reader.next(r, a)) trace.push(a);
  }
  return SharedTrace(std::make_shared<const tit::Trace>(std::move(trace)),
                     reader.skipped_actions());
}

}  // namespace tir::titio
