// Streaming writer of the TITB binary trace format (format.hpp).
//
// Actions are appended in any rank interleaving; the writer batches each
// rank's actions into frames and flushes a frame whenever a rank's pending
// batch reaches `frame_actions`.  Memory is therefore bounded by
// nprocs x one encoded frame, independent of trace length — acquisition
// can emit a billion-action trace straight to disk.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "tit/trace.hpp"
#include "titio/format.hpp"

namespace tir::titio {

struct WriterOptions {
  /// Actions per frame: the frame is the unit of reader buffering, so this
  /// bounds both writer and reader memory. 4096 actions ≈ 20-60 KiB payload.
  std::uint32_t frame_actions = 4096;
  /// Format version to emit (format.hpp): kVersion (2) by default; kVersionV1
  /// produces the legacy 20-byte footer without a checkpoint-offset slot —
  /// kept writable so backward-compatibility tests exercise genuine v1 files.
  std::uint16_t version = kVersion;
};

class Writer {
 public:
  /// Creates/truncates `path` and writes the header immediately.
  Writer(const std::string& path, int nprocs, WriterOptions options = {});

  /// Best-effort finish(); errors are swallowed (call finish() yourself to
  /// observe them — an unfinished file has no index and will not load).
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Append one action, routed by a.proc. Throws on out-of-range rank.
  void add(const tit::Action& a);

  /// Flush pending frames, write the index frame and footer. Idempotent;
  /// no add() is allowed afterwards.
  void finish();

  std::uint64_t actions_written() const { return total_actions_; }

 private:
  void flush_rank(std::size_t rank);
  void write_frame(std::uint8_t kind, std::uint64_t id, std::uint64_t count,
                   const std::vector<std::uint8_t>& payload);

  std::ofstream out_;
  std::string path_;
  WriterOptions options_;
  int nprocs_;
  bool finished_ = false;
  std::uint64_t offset_ = 0;        ///< bytes written so far
  std::uint64_t total_actions_ = 0;
  std::vector<std::vector<std::uint8_t>> pending_;  ///< encoded actions per rank
  std::vector<std::uint64_t> pending_count_;
  std::vector<FrameRef> frames_;    ///< flushed action frames, file order
};

/// Convenience: dump a materialized trace to one binary file.
void write_binary_trace(const tit::Trace& trace, const std::string& path,
                        WriterOptions options = {});

}  // namespace tir::titio
