// The TITB binary Time-Independent Trace format, version 2.
//
// Layout (all fixed-width integers little-endian):
//
//   File        := Header ActionFrame* [CheckpointFrame] IndexFrame Footer
//   Header      := magic u32 ("TITB")  version u16  flags u16  nprocs u32
//   ActionFrame := 'A' u8  rank varint  action_count varint
//                  payload_size varint  payload  crc32(payload) u32
//   CheckpointFrame := 'C' u8  block_count varint  block_count varint
//                  payload_size varint  payload  crc32(payload) u32
//   IndexFrame  := 'I' u8  entry_count varint  entry_count varint
//                  payload_size varint  payload  crc32(payload) u32
//   Footer v1   := index_offset u64  total_actions u64  end magic u32 ("TITE")
//   Footer v2   := index_offset u64  ckpt_offset u64  total_actions u64
//                  end magic u32 ("TITE")
//
// Version 2 (docs/trace_format.md §version 2) adds the optional checkpoint
// frame: replay snapshots (src/ckpt) keyed by scenario fingerprint, placed
// between the last action frame and the index so every action offset — and
// therefore Reader::content_hash — is unchanged by appending checkpoints.
// ckpt_offset is 0 when the file carries no checkpoints.  Readers accept
// both versions; a v1 file is upgraded in place by rewriting its tail
// (checkpoint frame + index + v2 footer) and patching the header version.
//
// An action-frame payload is a run of actions of ONE rank, so the issuing
// rank is stored once per frame rather than once per action.  Each index
// payload entry is (rank varint, start-offset delta varint, action_count
// varint, payload_size varint) for one action frame, in file order: a
// reader seeks the footer, loads the single index frame, and from then on
// needs only one frame per rank in memory at a time.  Every frame payload
// is CRC-32 protected, so truncation and bit rot are detected per frame,
// not discovered as garbage actions.
//
// Action encoding inside a payload (docs/trace_format.md has the rationale):
//
//   action := type u8  flags u8  [partner varint]  [volume]  [volume2]
//
// Volumes are almost always integral counts (instructions, bytes), so they
// ship as varints; the flag bits switch to a raw 8-byte double for the rare
// fractional/huge value and elide absent fields entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tit/action.hpp"

namespace tir::titio {

inline constexpr std::uint32_t kMagic = 0x42544954u;     ///< "TITB" as LE bytes
inline constexpr std::uint32_t kEndMagic = 0x45544954u;  ///< "TITE" as LE bytes
inline constexpr std::uint16_t kVersion = 2;
inline constexpr std::uint16_t kVersionV1 = 1;  ///< still readable (no ckpt frame)

inline constexpr std::uint8_t kActionFrame = 'A';
inline constexpr std::uint8_t kIndexFrame = 'I';
inline constexpr std::uint8_t kCheckpointFrame = 'C';

inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kFooterBytesV1 = 20;
inline constexpr std::size_t kFooterBytesV2 = 28;
/// Smallest footer either version can have (used for minimum-size checks).
inline constexpr std::size_t kFooterBytes = kFooterBytesV1;
/// Upper bound of an encoded frame preamble: kind + three worst-case varints.
inline constexpr std::size_t kMaxFramePreamble = 1 + 3 * 10;

/// Action flag bits.
inline constexpr std::uint8_t kHasPartner = 1u << 0;  ///< partner varint follows
inline constexpr std::uint8_t kHasVolume = 1u << 1;   ///< volume field follows
inline constexpr std::uint8_t kVolumeF64 = 1u << 2;   ///< volume is a raw LE double
inline constexpr std::uint8_t kVolumeNone = 1u << 3;  ///< volume = tit::kNoVolume
inline constexpr std::uint8_t kHasVolume2 = 1u << 4;  ///< volume2 field follows
inline constexpr std::uint8_t kVolume2F64 = 1u << 5;  ///< volume2 is a raw LE double

/// One action frame as recorded in the index.
struct FrameRef {
  std::uint64_t offset = 0;         ///< file offset of the frame's kind byte
  std::uint64_t actions = 0;        ///< actions encoded in the payload
  std::uint64_t payload_bytes = 0;  ///< payload size (excl. preamble and CRC)
  std::uint32_t rank = 0;           ///< issuing rank of every action inside
};

/// Append one action (proc implied by the enclosing frame's rank).
void encode_action(std::vector<std::uint8_t>& out, const tit::Action& a);

/// Decode one action from payload[pos...), advancing pos. The issuing rank
/// comes from the frame. Throws tir::ParseError on malformed bytes.
tit::Action decode_action(const std::uint8_t* payload, std::size_t size, std::size_t& pos,
                          std::int32_t rank);

}  // namespace tir::titio
