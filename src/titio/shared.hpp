// SharedTrace: one immutable decoded trace, many independent replay cursors.
//
// A scenario sweep (core/sweep.hpp) replays the *same* trace under N
// different platform/configuration scenarios, possibly concurrently.  The
// single-owner sources (MemorySource over a caller-owned Trace, the
// streaming Reader with its per-rank file cursors) cannot be shared: each
// holds mutable per-rank positions, and a Reader would re-read and re-decode
// the file once per session.  SharedTrace fixes the cost model: the trace is
// loaded and decoded exactly once into an immutable tit::Trace held by
// shared_ptr, and cursor() hands out cheap cursor-only ActionSources — one
// per session — that carry nothing but per-rank indices into the shared
// action vectors.  N concurrent sessions share one decoded copy of the
// frames; no re-decoding, no per-session payload copies.
//
// Thread-safety contract: after construction a SharedTrace is immutable.
// cursor() is const and safe to call from any thread; each Cursor is then
// owned by exactly one replay session (cursors themselves are not
// thread-safe, sessions are single-threaded).  Cursors keep the decoded
// trace alive independently of the SharedTrace that minted them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "titio/reader.hpp"
#include "titio/source.hpp"

namespace tir::titio {

/// Content fingerprint of a decoded trace: every action of every rank folded
/// through binio::mix64 in rank order.  Deterministic across processes; the
/// cache key for text/in-memory traces (binary files use the cheaper
/// Reader::content_hash over their stored frame CRCs).
std::uint64_t hash_actions(const tit::Trace& trace);

class SharedTrace {
 public:
  /// Cursor-only view: per-rank indices into the shared immutable trace.
  /// Rewindable, so one cursor can also feed several sequential replays.
  class Cursor final : public ActionSource {
   public:
    Cursor(std::shared_ptr<const tit::Trace> trace, std::uint64_t load_skipped)
        : trace_(std::move(trace)),
          load_skipped_(load_skipped),
          pos_(static_cast<std::size_t>(trace_->nprocs()), 0) {}

    int nprocs() const override { return trace_->nprocs(); }

    bool next(int rank, tit::Action& out) override {
      const std::vector<tit::Action>& seq = trace_->actions(rank);
      std::size_t& i = pos_[static_cast<std::size_t>(rank)];
      if (i >= seq.size()) return false;
      out = seq[i++];
      return true;
    }

    /// Actions the shared load dropped to corrupt-frame recovery; every
    /// cursor reports them so each session's ReplayResult::degraded flag
    /// reflects the state of the one decoded copy.
    std::uint64_t skipped_actions() const override { return load_skipped_; }

    void rewind() override { pos_.assign(pos_.size(), 0); }

   protected:
    void do_seek(const std::vector<std::uint64_t>& positions) override {
      std::vector<std::size_t> limits(pos_.size());
      for (std::size_t r = 0; r < limits.size(); ++r) {
        limits[r] = trace_->actions(static_cast<int>(r)).size();
      }
      check_seek(positions, nprocs(), limits);
      for (std::size_t r = 0; r < pos_.size(); ++r) {
        pos_[r] = static_cast<std::size_t>(positions[r]);
      }
    }

   private:
    std::shared_ptr<const tit::Trace> trace_;
    std::uint64_t load_skipped_;
    std::vector<std::size_t> pos_;
  };

  /// Adopt an in-memory trace (moved in; no further copies are made).
  explicit SharedTrace(tit::Trace trace)
      : trace_(std::make_shared<const tit::Trace>(std::move(trace))),
        content_hash_(hash_actions(*trace_)) {}

  /// Share an already-shared trace (no copy at all).
  explicit SharedTrace(std::shared_ptr<const tit::Trace> trace);

  /// Load a trace file once: a TITB binary (decoded through titio::Reader,
  /// honoring `options` including corrupt-frame recovery) or a text
  /// manifest (tit::load_trace; `nprocs` forwarded for single-file
  /// manifests).  The result is the one decoded copy every cursor shares.
  static SharedTrace load(const std::string& path, ReaderOptions options = {},
                          int nprocs = -1);

  int nprocs() const { return trace_->nprocs(); }
  std::uint64_t total_actions() const {
    return static_cast<std::uint64_t>(trace_->total_actions());
  }
  /// Actions dropped by corrupt-frame recovery while loading (0 for clean
  /// files and in-memory traces).
  std::uint64_t skipped_actions() const { return load_skipped_; }

  /// Content fingerprint of the loaded trace (the prediction service's cache
  /// key).  TITB loads reuse the file's stored frame CRCs
  /// (Reader::content_hash); text and in-memory traces hash the decoded
  /// actions (hash_actions).  The two domains never collide, so a binary and
  /// a text encoding of the same logical trace are distinct cache entries.
  std::uint64_t content_hash() const { return content_hash_; }

  const tit::Trace& trace() const { return *trace_; }
  const std::shared_ptr<const tit::Trace>& share() const { return trace_; }

  /// Mint an independent cursor; one per concurrent replay session.
  Cursor cursor() const { return Cursor(trace_, load_skipped_); }

 private:
  SharedTrace(std::shared_ptr<const tit::Trace> trace, std::uint64_t skipped, std::uint64_t hash)
      : trace_(std::move(trace)), load_skipped_(skipped), content_hash_(hash) {}

  std::shared_ptr<const tit::Trace> trace_;
  std::uint64_t load_skipped_ = 0;
  std::uint64_t content_hash_ = 0;
};

}  // namespace tir::titio
