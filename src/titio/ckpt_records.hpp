// Checkpoint records stored inside TITB v2 files (format.hpp).
//
// A checkpoint is a consistent cut of a replay: per rank, the number of
// actions completed, the simulated time at that boundary, the count of
// collective sites passed, and a running hash of the action prefix.  A
// block groups the checkpoints of ONE scenario (identified by its
// fingerprint: backend + platform + config; src/ckpt/checkpoint.hpp) —
// the same trace file can carry checkpoints of several scenarios.
//
// Checkpoint-frame payload ('C' frame, block count in the preamble):
//
//   payload    := ckpt_version varint(=1)  block*
//   block      := fingerprint u64  nprocs varint  checkpoint_count varint
//                 checkpoint*
//   checkpoint := time f64  rank_state{nprocs}
//   rank_state := position varint  time f64  collective_sites varint
//                 prefix_hash u64
//
// (f64 = raw little-endian IEEE-754 bytes; u64 = little-endian.)
//
// Appending checkpoints rewrites only the file tail (checkpoint frame +
// index frame + footer): action frames never move, so
// Reader::content_hash — the service cache key — is invariant under
// append_checkpoints.  A v1 file is upgraded to v2 in place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tir::titio {

class Reader;

/// Per-rank state of one consistent cut.
struct CkptRankState {
  std::uint64_t position = 0;         ///< actions of this rank completed
  double time = 0.0;                  ///< simulated time at that boundary
  std::uint64_t collective_sites = 0; ///< collective call sites passed
  std::uint64_t prefix_hash = 0;      ///< fold of the rank's replayed prefix

  bool operator==(const CkptRankState&) const = default;
};

/// One consistent cut: per-rank states plus the cut time (max rank time).
struct TraceCheckpoint {
  double time = 0.0;
  std::vector<CkptRankState> ranks;

  bool operator==(const TraceCheckpoint&) const = default;
};

/// Checkpoints of one scenario, keyed by its fingerprint.
struct CheckpointBlock {
  std::uint64_t fingerprint = 0;
  int nprocs = 0;
  std::vector<TraceCheckpoint> checkpoints;  ///< ascending by time

  bool operator==(const CheckpointBlock&) const = default;
};

/// Encode blocks into a checkpoint-frame payload (without the frame shell).
std::vector<std::uint8_t> encode_checkpoint_payload(
    const std::vector<CheckpointBlock>& blocks);

/// Decode a checkpoint-frame payload. Blocks are self-delimiting, so the
/// payload alone suffices. Throws tir::ParseError on malformed bytes.
std::vector<CheckpointBlock> decode_checkpoint_payload(
    const std::vector<std::uint8_t>& payload);

/// Checkpoint blocks of an open trace, or empty when it has none.  Damage
/// never throws: checkpoints are an accelerator, so a corrupt frame logs a
/// warning and degrades to "no checkpoints" (cold replay still works).
std::vector<CheckpointBlock> read_checkpoints(Reader& reader);

/// Convenience: open `path` and read its checkpoint blocks.
std::vector<CheckpointBlock> read_checkpoints(const std::string& path);

/// Merge `blocks` into the trace at `path` (replacing any existing block
/// with the same fingerprint) by rewriting the file tail in place: the new
/// checkpoint frame, the verbatim index frame, and a v2 footer.  A v1 file
/// is upgraded to v2 (header version patched).  Action frames and
/// Reader::content_hash are unchanged.  Throws tir::Error on I/O failure,
/// tir::ParseError if the file is not a loadable TITB trace, tir::Error on
/// a block whose rank states disagree with its nprocs.
void append_checkpoints(const std::string& path, const std::vector<CheckpointBlock>& blocks);

}  // namespace tir::titio
