#include "titio/writer.hpp"

#include "base/binio.hpp"
#include "base/error.hpp"

namespace tir::titio {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

Writer::Writer(const std::string& path, int nprocs, WriterOptions options)
    : out_(path, std::ios::binary | std::ios::trunc),
      path_(path),
      options_(options),
      nprocs_(nprocs) {
  if (nprocs <= 0) throw Error("binary trace needs nprocs > 0, got " + std::to_string(nprocs));
  if (options_.frame_actions == 0) options_.frame_actions = 1;
  if (options_.version != kVersion && options_.version != kVersionV1) {
    throw Error("unsupported TITB writer version " + std::to_string(options_.version) + ": " +
                path);
  }
  if (!out_) throw Error("cannot write binary trace: " + path);
  pending_.resize(static_cast<std::size_t>(nprocs));
  pending_count_.resize(static_cast<std::size_t>(nprocs), 0);

  std::vector<std::uint8_t> header;
  put_u32(header, kMagic);
  put_u16(header, options_.version);
  put_u16(header, 0);  // flags
  put_u32(header, static_cast<std::uint32_t>(nprocs));
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  offset_ = header.size();
}

Writer::~Writer() {
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Destructor must not throw; an unfinished file fails to load anyway.
  }
}

void Writer::add(const tit::Action& a) {
  if (finished_) throw Error("binary trace writer already finished: " + path_);
  if (a.proc < 0 || a.proc >= nprocs_) {
    throw Error("action rank p" + std::to_string(a.proc) + " out of range (nprocs=" +
                std::to_string(nprocs_) + ") in " + path_);
  }
  const auto rank = static_cast<std::size_t>(a.proc);
  encode_action(pending_[rank], a);
  ++pending_count_[rank];
  ++total_actions_;
  if (pending_count_[rank] >= options_.frame_actions) flush_rank(rank);
}

void Writer::flush_rank(std::size_t rank) {
  if (pending_count_[rank] == 0) return;
  frames_.push_back(FrameRef{offset_, pending_count_[rank], pending_[rank].size(),
                             static_cast<std::uint32_t>(rank)});
  write_frame(kActionFrame, rank, pending_count_[rank], pending_[rank]);
  pending_[rank].clear();
  pending_count_[rank] = 0;
}

void Writer::write_frame(std::uint8_t kind, std::uint64_t id, std::uint64_t count,
                         const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> preamble;
  preamble.push_back(kind);
  binio::put_varint(preamble, id);
  binio::put_varint(preamble, count);
  binio::put_varint(preamble, payload.size());
  out_.write(reinterpret_cast<const char*>(preamble.data()),
             static_cast<std::streamsize>(preamble.size()));
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  std::vector<std::uint8_t> crc;
  put_u32(crc, binio::crc32(payload.data(), payload.size()));
  out_.write(reinterpret_cast<const char*>(crc.data()), static_cast<std::streamsize>(crc.size()));
  if (!out_) throw Error("write failed on binary trace: " + path_);
  offset_ += preamble.size() + payload.size() + crc.size();
}

void Writer::finish() {
  if (finished_) return;
  for (std::size_t r = 0; r < pending_.size(); ++r) flush_rank(r);

  // Index frame: one entry per action frame, offsets delta-encoded in file
  // order. The frame's "id" slot carries the entry count.
  std::vector<std::uint8_t> index;
  std::uint64_t prev_offset = 0;
  for (const FrameRef& f : frames_) {
    binio::put_varint(index, f.rank);
    binio::put_varint(index, f.offset - prev_offset);
    binio::put_varint(index, f.actions);
    binio::put_varint(index, f.payload_bytes);
    prev_offset = f.offset;
  }
  const std::uint64_t index_offset = offset_;
  write_frame(kIndexFrame, frames_.size(), frames_.size(), index);

  std::vector<std::uint8_t> footer;
  put_u64(footer, index_offset);
  // v2 footer carries the checkpoint-frame offset; a freshly written trace
  // has no checkpoints (ckpt::append_checkpoints adds them in place later).
  if (options_.version != kVersionV1) put_u64(footer, 0);
  put_u64(footer, total_actions_);
  put_u32(footer, kEndMagic);
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  out_.flush();
  if (!out_) throw Error("write failed on binary trace: " + path_);
  finished_ = true;
}

void write_binary_trace(const tit::Trace& trace, const std::string& path,
                        WriterOptions options) {
  Writer writer(path, trace.nprocs(), options);
  for (int p = 0; p < trace.nprocs(); ++p) {
    for (const tit::Action& a : trace.actions(p)) writer.add(a);
  }
  writer.finish();
}

}  // namespace tir::titio
