// The tird daemon core: accept connections, admit prediction jobs through a
// bounded queue, run them on a worker pool over shared caches, stream results.
//
// Lifecycle (examples/tird.cpp is the thin CLI around this):
//
//   Server server(options);
//   server.start();        // bind + listen + spawn accept/worker threads
//   ...                    // serve until shutdown() — from a signal-watcher
//                          // thread (SIGTERM) or the {"op":"shutdown"} op
//   server.wait();         // drain admitted jobs, join every thread
//
// Shutdown is a *drain*: the listener closes and the queue stops admitting
// immediately, but every job already admitted runs to completion and its
// client receives the full response stream before the connection threads are
// released.  Nothing admitted is ever dropped (tested in
// tests/svc/server_test.cpp).
//
// Caching: three content-keyed LRU caches (svc/cache.hpp) share the job hot
// path — decoded traces (keyed by titio content hash), parsed platforms
// (keyed by file bytes), calibrated rates (keyed by platform key +
// core::calibration_cache_key).  cache_bytes = 0 disables retention, which
// is how tird-bench measures the cold path of the very same binary.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "platform/platform.hpp"
#include "svc/cache.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "titio/shared.hpp"

namespace tir::svc {

struct ServerOptions {
  std::string endpoint = "unix:/tmp/tird.sock";
  int workers = 0;                          ///< <= 0: hardware concurrency
  std::size_t queue_capacity = 64;          ///< admission queue depth
  std::uint64_t cache_bytes = 256ull << 20; ///< trace-cache budget; 0 = no retention
  int retry_after_ms = 50;                  ///< backoff hint in reject responses
  /// Read stall cutoff for client connections, milliseconds (0 = none).
  /// Slow-loris semantics: only a peer stalled *mid-line* is cut; idle
  /// connections may sit forever (LineConn::TimeoutMode::MidLine).
  int read_timeout_ms = 30000;
  /// Write stall cutoff, milliseconds (0 = none): a client that stops
  /// draining its socket while a worker streams results is treated as gone.
  int write_timeout_ms = 10000;
  /// Request line byte cap; longer lines drop the connection.
  std::size_t max_frame = 1u << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the endpoint and spawn the accept thread plus the worker pool.
  void start();

  /// The resolved listen endpoint (a tcp:HOST:0 request reports the
  /// kernel-assigned port).  Valid after start().
  const std::string& endpoint() const { return listener_->endpoint(); }

  /// Begin the drain: stop accepting, stop admitting, wake everything.
  /// Idempotent and callable from any thread (signal watcher, connection
  /// thread handling {"op":"shutdown"}, tests).
  void shutdown();

  /// Block until shutdown() was called, then drain the queue and join every
  /// thread.  Call from the owning thread (the daemon's main), never from a
  /// server-spawned thread.
  void wait();

  bool stopping() const { return stopping_.load(); }

  CacheStats trace_cache_stats() const { return traces_.stats(); }
  CacheStats platform_cache_stats() const { return platforms_.stats(); }
  CacheStats calibration_cache_stats() const { return calibrations_.stats(); }

 private:
  /// One accepted connection: its socket plus the write lock that keeps
  /// worker-streamed results and connection-thread acks from interleaving
  /// mid-line.
  struct Client {
    explicit Client(LineConn c) : conn(std::move(c)) {}
    LineConn conn;
    std::mutex write_mutex;

    /// Serialize and write one response line; false once the peer is gone.
    /// Never throws — a worker streaming results to a vanished client must
    /// not die with it.
    bool send(const Json& response) {
      const std::lock_guard<std::mutex> lock(write_mutex);
      if (!conn.valid()) return false;
      bool ok = false;
      try {
        ok = conn.write_line(response.dump());
      } catch (...) {
      }
      // A failed write means the peer is gone or wedged.  Half-close the
      // socket so the peer (and our own connection reader, blocked in recv)
      // sees EOF *now* — a silently truncated stream would leave a client
      // waiting out its whole read timeout for lines that can never come.
      if (!ok) ::shutdown(conn.fd(), SHUT_RDWR);
      return ok;
    }
  };

  struct Job {
    JobRequest request;
    std::shared_ptr<Client> client;
    std::chrono::steady_clock::time_point admitted{};
    /// Deadline derived from request.deadline_ms at admission; only
    /// meaningful when has_deadline.
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  /// One finished job's full response stream, retained for idempotent
  /// re-submits (keyed by the request's "idem" content key).  Replayed
  /// copies are re-stamped with the new job id.
  struct CompletedJob {
    Json started;
    std::vector<Json> scenarios;
    Json done;
  };

  void accept_loop();
  void worker_loop();
  void handle_connection(std::shared_ptr<Client> client);
  void handle_line(const std::shared_ptr<Client>& client, const std::string& line);
  void run_job(Job& job);
  /// Serve a completed job from the idempotency cache; false on miss.
  bool replay_completed(const Job& job);
  Json stats_json() const;

  ServerOptions options_;
  std::unique_ptr<Listener> listener_;
  BoundedQueue<Job> queue_;

  // Content-keyed caches (values are cheap-copy handles; see cache.hpp).
  LruCache<std::shared_ptr<const titio::SharedTrace>> traces_;
  LruCache<std::shared_ptr<const platform::Platform>> platforms_;
  LruCache<double> calibrations_;
  /// Idempotency results: content key -> full response stream of a clean
  /// (not expired, not degraded) completed job.
  LruCache<std::shared_ptr<const CompletedJob>> results_;
  /// Text manifests cannot be content-hashed without decoding, so the first
  /// load memoizes path -> content hash here (flush clears it; TITB files
  /// are re-fingerprinted from their frame CRCs on every request instead).
  std::unordered_map<std::string, std::uint64_t> text_keys_;
  mutable std::mutex text_keys_mutex_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> conn_threads_;
  std::mutex threads_mutex_;
  std::vector<std::shared_ptr<Client>> clients_;
  std::mutex clients_mutex_;

  int worker_count_ = 0;  ///< fixed at start(); stats-safe while draining
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;

  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> jobs_admitted_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> scenarios_ok_{0};
  std::atomic<std::uint64_t> scenarios_failed_{0};
  std::atomic<std::uint64_t> jobs_expired_{0};    ///< deadline tripped (pre-run or mid-sweep)
  std::atomic<std::uint64_t> jobs_degraded_{0};   ///< cache pressure shed to cold path
  std::atomic<std::uint64_t> idempotent_replays_{0};
};

}  // namespace tir::svc
