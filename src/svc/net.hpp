// Thin POSIX socket layer for the service: listen/connect on Unix-domain or
// loopback TCP endpoints, and a buffered line connection for the
// newline-delimited JSON protocol.
//
// Endpoint grammar (what tird -listen and tir-submit -connect take):
//
//   unix:/path/to/socket     Unix-domain stream socket at that path
//   tcp:HOST:PORT            TCP; HOST is a dotted IPv4 address, PORT may be
//                            0 when listening (kernel-assigned, reported by
//                            Listener::endpoint())
//
// Everything throws tir::Error with errno text on failure.  Writes use
// MSG_NOSIGNAL so a client that disconnected mid-job surfaces as an error
// return, never as a SIGPIPE kill of the daemon.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace tir::svc {

/// One accepted (or connected) stream socket with buffered line reads.
/// Owned exclusively by one thread for reads; write_line() is atomic at the
/// call level but callers interleaving writers must hold their own lock
/// (the server wraps one mutex per connection).
///
/// Timeouts (off by default): set_timeouts() arms SO_RCVTIMEO/SO_SNDTIMEO
/// and picks what a read timeout means:
///
///   TimeoutMode::MidLine — the server's slow-loris defense: an idle
///     connection may sit quietly forever, but a peer that sent *part* of a
///     line and stalled is cut off (read_line throws).
///   TimeoutMode::Always  — the client's deadline: any read stall throws.
///
/// A write timeout always means the peer stopped draining; write_line
/// reports it as false (peer gone), same as EPIPE.
class LineConn {
 public:
  enum class TimeoutMode { None, MidLine, Always };

  LineConn() = default;
  explicit LineConn(int fd) : fd_(fd) {}
  ~LineConn() { close(); }

  LineConn(LineConn&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)), timeout_mode_(other.timeout_mode_) {
    other.fd_ = -1;
  }
  LineConn& operator=(LineConn&& other) noexcept;
  LineConn(const LineConn&) = delete;
  LineConn& operator=(const LineConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Arm kernel-level read/write timeouts (milliseconds; <= 0 leaves that
  /// direction unbounded) and the read-timeout semantics above.
  void set_timeouts(int recv_ms, int send_ms, TimeoutMode mode);

  /// Read up to and including the next '\n'; the line is returned without
  /// it.  False on orderly EOF with nothing buffered.  Throws on I/O errors,
  /// on lines longer than `max_line` (a malformed or malicious client), and
  /// on read timeouts per the TimeoutMode.
  bool read_line(std::string& out, std::size_t max_line = 1u << 20);

  /// Write `line` plus '\n'.  False if the peer is gone or stopped draining
  /// (EPIPE/ECONNRESET/send timeout); throws on other errors.
  bool write_line(const std::string& line);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
  TimeoutMode timeout_mode_ = TimeoutMode::None;
};

/// Listening socket for either endpoint flavour.
class Listener {
 public:
  /// Bind + listen.  A unix: path is unlinked first (stale socket files from
  /// a killed daemon must not block restarts).
  explicit Listener(const std::string& endpoint);
  ~Listener() { close(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection; blocks.  Invalid LineConn if the listener was
  /// closed from another thread (the shutdown path).
  LineConn accept();

  /// The resolved endpoint ("tcp:127.0.0.1:37841" after a port-0 bind).
  const std::string& endpoint() const { return endpoint_; }

  void close();

 private:
  /// Written by close() on the shutdown thread while accept() reads it on
  /// the accept thread, hence atomic.
  std::atomic<int> fd_{-1};
  std::string endpoint_;
  std::string unlink_path_;  ///< unix socket file to remove on close
};

/// Connect to a listening daemon.
LineConn dial(const std::string& endpoint);

}  // namespace tir::svc
