// Minimal JSON value for the service protocol (docs/service.md).
//
// The daemon speaks newline-delimited JSON over a local socket; this is the
// smallest dependency-free value type that round-trips it.  Numbers are
// doubles printed with %.17g, which round-trips every finite double exactly
// — that exactness is load-bearing: the service bench proves cached and cold
// replays bit-identical by comparing numbers that crossed the wire.
//
// Intentionally not a general-purpose JSON library: no comments, no \u
// escapes beyond what the protocol emits (non-ASCII bytes pass through
// verbatim), objects preserve insertion order, duplicate keys keep the last.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"

namespace tir::svc {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double v) : type_(Type::Number), num_(v) {}
  Json(int v) : type_(Type::Number), num_(v) {}
  Json(std::int64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  // Covers std::size_t too (the same type as uint64_t on LP64 targets).
  Json(std::uint64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  /// Parse one JSON document; trailing non-whitespace throws.  All errors
  /// are tir::ParseError with the byte offset.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_string() const { return type_ == Type::String; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_bool() const { return type_ == Type::Bool; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // --- arrays ---------------------------------------------------------------
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  // --- objects --------------------------------------------------------------
  /// Null reference if absent (never throws): `j.get("k").is_null()`.
  const Json& get(std::string_view key) const;
  bool has(std::string_view key) const { return !get(key).is_null(); }
  void set(std::string key, Json value);

  // Typed object lookups with defaults (the protocol is default-heavy).
  double num_or(std::string_view key, double fallback) const;
  std::string str_or(std::string_view key, std::string fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Serialize compactly (no whitespace) — one response per line.
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                              ///< Array
  std::vector<std::pair<std::string, Json>> members_;    ///< Object, insertion order
};

/// Format a double as JSON with exact round-trip (%.17g, NaN/Inf -> null).
std::string json_number(double v);

}  // namespace tir::svc
