#include "svc/client.hpp"

#include <algorithm>
#include <thread>

#include "base/rng.hpp"

namespace tir::svc {

namespace {

JobResult transport_failure(std::string what) {
  JobResult result;
  result.failed = true;
  result.transport = true;
  result.error = std::move(what);
  result.error_code = "error";
  return result;
}

}  // namespace

Client::Client(const std::string& endpoint) : conn_(dial(endpoint)) {}

JobResult Client::submit(const JobRequest& request) {
  JobResult result;
  result.attempts = 1;
  try {
    if (!conn_.write_line(render_request(request))) {
      return transport_failure("connection closed before the request was sent");
    }
    std::string line;
    while (conn_.read_line(line)) {
      if (line.empty()) continue;
      Json response = Json::parse(line);
      const std::string type = response.str_or("type", "");
      // "accepted" and "started" may arrive in either order (the admission ack
      // and the worker stream race on the shared socket); key on type, not
      // position.
      if (type == "rejected") {
        result.rejected = true;
        result.retry_after_ms = static_cast<int>(response.num_or("retry_after_ms", 0));
        return result;
      }
      // Any job-stamped line may be the first one seen ("accepted" can lose
      // the race to the worker's whole stream on a fast job).
      if (!response.get("job").is_null()) {
        result.id = static_cast<std::uint64_t>(response.num_or("job", 0));
      }
      if (type == "accepted") {
        result.accepted = true;
      } else if (type == "started") {
        result.started = std::move(response);
      } else if (type == "scenario") {
        result.scenarios.push_back(std::move(response));
      } else if (type == "done") {
        result.expired = response.bool_or("expired", false);
        result.epilogue = std::move(response);
        result.done = true;
        return result;
      } else if (type == "failed" || type == "error") {
        result.failed = true;
        result.expired = response.bool_or("expired", false);
        result.error = response.str_or("error", "");
        result.error_code = response.str_or("error_code", "generic");
        return result;
      }
      // pong/stats/ok from a pipelined op: not ours, skip.
    }
  } catch (const Error& e) {
    // Reset, read timeout, oversized line: the transport died under us.
    return transport_failure(e.what());
  }
  return transport_failure("connection closed mid-job");
}

Json Client::roundtrip(const std::string& line, const std::string& expect_type) {
  if (!conn_.write_line(line)) return Json();
  std::string response_line;
  while (conn_.read_line(response_line)) {
    if (response_line.empty()) continue;
    Json response = Json::parse(response_line);
    const std::string type = response.str_or("type", "");
    if (type == expect_type || type == "error") return response;
  }
  return Json();
}

bool Client::ping() {
  const Json pong = roundtrip("{\"op\":\"ping\"}", "pong");
  return pong.str_or("type", "") == "pong";
}

Json Client::stats() { return roundtrip("{\"op\":\"stats\"}", "stats"); }

bool Client::flush() {
  const Json ok = roundtrip("{\"op\":\"flush\"}", "ok");
  return ok.str_or("type", "") == "ok";
}

bool Client::shutdown_server() {
  const Json ok = roundtrip("{\"op\":\"shutdown\"}", "ok");
  return ok.str_or("type", "") == "ok";
}

// --- circuit breaker ---------------------------------------------------------

bool CircuitBreaker::allow() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!open_) return true;
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - opened_).count();
  if (waited < cooldown_seconds_) return false;
  // Half-open: let one probe through; a failure re-opens (and re-stamps the
  // cooldown), a success closes.
  open_ = false;
  failures_ = threshold_ - 1;
  return true;
}

void CircuitBreaker::record_success() {
  const std::lock_guard<std::mutex> lock(mutex_);
  failures_ = 0;
  open_ = false;
}

void CircuitBreaker::record_failure() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (++failures_ >= threshold_) {
    open_ = true;
    opened_ = std::chrono::steady_clock::now();
  }
}

bool CircuitBreaker::open() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_;
}

int CircuitBreaker::consecutive_failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

// --- resilient submit --------------------------------------------------------

JobResult submit_with_retry(const std::string& endpoint, JobRequest request,
                            const RetryPolicy& policy, CircuitBreaker* breaker,
                            std::vector<RetryEvent>* schedule) {
  // Stamp the idempotency key before the first attempt so *every* attempt
  // (including one whose response stream died mid-flight) shares it.
  if (request.idem_key.empty()) request.idem_key = content_key(request);

  const bool bounded = policy.deadline_seconds > 0;
  const auto overall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(bounded ? policy.deadline_seconds : 0.0));
  const auto remaining_ms = [&]() -> double {
    if (!bounded) return 0.0;
    return std::chrono::duration<double, std::milli>(overall_deadline -
                                                     std::chrono::steady_clock::now())
        .count();
  };

  rng::Sequence jitter(rng::combine(policy.seed, 0x7265747279ULL));  // "retry"
  double previous_backoff = policy.base_ms;
  JobResult result;
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (bounded && remaining_ms() <= 0) {
      if (result.attempts == 0) {
        result = transport_failure("retry deadline expired before any attempt finished");
        result.error_code = "cancelled";
      }
      result.expired = true;
      return result;
    }
    if (breaker != nullptr && !breaker->allow()) {
      result = transport_failure("circuit breaker open (" +
                                 std::to_string(breaker->consecutive_failures()) +
                                 " consecutive transport failures)");
      result.attempts = attempt - 1;
      return result;
    }

    if (bounded) {
      // The server enforces the *remaining* budget, not the original one.
      request.deadline_ms = std::max(1.0, remaining_ms());
    }
    try {
      Client client(endpoint);
      if (bounded) {
        client.set_timeouts(static_cast<int>(std::max(1.0, remaining_ms())) + 100, 0);
      }
      result = client.submit(request);
      result.attempts = attempt;
    } catch (const Error& e) {
      // dial() failed: daemon not listening / injected connect reset.
      result = transport_failure(e.what());
      result.attempts = attempt;
    }

    const bool retryable = result.rejected || (result.failed && result.transport);
    if (breaker != nullptr && !result.rejected) {
      // Rejection is a healthy server saying "later", not a transport fault.
      if (result.transport) {
        breaker->record_failure();
      } else {
        breaker->record_success();
      }
    }
    if (!retryable || attempt == attempts) return result;

    // Decorrelated jitter, floored at the server's retry_after_ms hint when
    // the attempt was rejected for backpressure.
    double backoff =
        std::min(policy.max_backoff_ms,
                 jitter.next_uniform(policy.base_ms, std::max(policy.base_ms,
                                                              3.0 * previous_backoff)));
    if (result.rejected) backoff = std::max(backoff, static_cast<double>(result.retry_after_ms));
    if (bounded) backoff = std::min(backoff, std::max(0.0, remaining_ms()));
    previous_backoff = backoff;
    if (schedule != nullptr) {
      schedule->push_back(
          RetryEvent{attempt, backoff, result.rejected ? "rejected" : "transport"});
    }
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff));
    }
  }
  return result;
}

}  // namespace tir::svc
