#include "svc/client.hpp"

namespace tir::svc {

Client::Client(const std::string& endpoint) : conn_(dial(endpoint)) {}

JobResult Client::submit(const JobRequest& request) {
  JobResult result;
  if (!conn_.write_line(render_request(request))) {
    result.failed = true;
    result.error = "connection closed before the request was sent";
    result.error_code = "generic";
    return result;
  }
  std::string line;
  while (conn_.read_line(line)) {
    if (line.empty()) continue;
    Json response = Json::parse(line);
    const std::string type = response.str_or("type", "");
    // "accepted" and "started" may arrive in either order (the admission ack
    // and the worker stream race on the shared socket); key on type, not
    // position.
    if (type == "rejected") {
      result.rejected = true;
      result.retry_after_ms = static_cast<int>(response.num_or("retry_after_ms", 0));
      return result;
    }
    // Any job-stamped line may be the first one seen ("accepted" can lose
    // the race to the worker's whole stream on a fast job).
    if (!response.get("job").is_null()) {
      result.id = static_cast<std::uint64_t>(response.num_or("job", 0));
    }
    if (type == "accepted") {
      result.accepted = true;
    } else if (type == "started") {
      result.started = std::move(response);
    } else if (type == "scenario") {
      result.scenarios.push_back(std::move(response));
    } else if (type == "done") {
      result.epilogue = std::move(response);
      result.done = true;
      return result;
    } else if (type == "failed" || type == "error") {
      result.failed = true;
      result.error = response.str_or("error", "");
      result.error_code = response.str_or("error_code", "generic");
      return result;
    }
    // pong/stats/ok from a pipelined op: not ours, skip.
  }
  result.failed = true;
  result.error = "connection closed mid-job";
  result.error_code = "generic";
  return result;
}

Json Client::roundtrip(const std::string& line, const std::string& expect_type) {
  if (!conn_.write_line(line)) return Json();
  std::string response_line;
  while (conn_.read_line(response_line)) {
    if (response_line.empty()) continue;
    Json response = Json::parse(response_line);
    const std::string type = response.str_or("type", "");
    if (type == expect_type || type == "error") return response;
  }
  return Json();
}

bool Client::ping() {
  const Json pong = roundtrip("{\"op\":\"ping\"}", "pong");
  return pong.str_or("type", "") == "pong";
}

Json Client::stats() { return roundtrip("{\"op\":\"stats\"}", "stats"); }

bool Client::flush() {
  const Json ok = roundtrip("{\"op\":\"flush\"}", "ok");
  return ok.str_or("type", "") == "ok";
}

bool Client::shutdown_server() {
  const Json ok = roundtrip("{\"op\":\"shutdown\"}", "ok");
  return ok.str_or("type", "") == "ok";
}

}  // namespace tir::svc
