#include "svc/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tir::svc {

namespace {

const Json kNull{};

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The protocol only ever emits ASCII; decode BMP points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_value(int depth) {
    if (depth > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      for (;;) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume("true")) return Json(true);
    if (consume("false")) return Json(false);
    if (consume("null")) return Json(nullptr);
    // Number: let strtod do the work, then validate it consumed something.
    const std::string slice(text.substr(pos, 64));
    char* end = nullptr;
    const double v = std::strtod(slice.c_str(), &end);
    if (end == slice.c_str()) fail("unexpected character");
    pos += static_cast<std::size_t>(end - slice.c_str());
    return Json(v);
  }
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing characters");
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw ParseError("json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw ParseError("json: not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw ParseError("json: not a string");
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return items_.size();
  if (type_ == Type::Object) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::Array || i >= items_.size()) throw ParseError("json: bad array index");
  return items_[i];
}

void Json::push_back(Json v) {
  TIR_ASSERT(type_ == Type::Array);
  items_.push_back(std::move(v));
}

const Json& Json::get(std::string_view key) const {
  if (type_ == Type::Object) {
    for (const auto& [k, v] : members_) {
      if (k == key) return v;
    }
  }
  return kNull;
}

void Json::set(std::string key, Json value) {
  TIR_ASSERT(type_ == Type::Object);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

double Json::num_or(std::string_view key, double fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_number() : fallback;
}

std::string Json::str_or(std::string_view key, std::string fallback) const {
  const Json& v = get(key);
  return v.is_string() ? v.as_string() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json& v = get(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Number: out += json_number(num_); return;
    case Type::String: dump_string(out, str_); return;
    case Type::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        items_[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace tir::svc
