// The tird wire protocol: newline-delimited JSON requests and responses.
//
// One request per line; the daemon answers each request with one or more
// response lines, every one tagged with the request's job id so clients may
// pipeline.  docs/service.md is the normative spec; this header is the typed
// mirror both the server and the clients (tir-submit, tird-bench) share, so
// a field added here is added everywhere at once.
//
// Requests:
//   {"op":"predict", "trace":..., "platform":..., "scenarios":[...], ...}
//   {"op":"ping"}         liveness probe
//   {"op":"stats"}        queue/cache/worker counters
//   {"op":"flush"}        drop every cache entry (benchmarks, tests)
//   {"op":"shutdown"}     drain admitted jobs, then exit
//
// Responses (type field):
//   rejected   admission queue full — carries retry_after_ms
//   accepted   job admitted — carries queue_depth
//   started    a worker picked the job up — carries cache hit/miss truth
//   scenario   one ScenarioOutcome, streamed as it completes
//   done       job epilogue — phase timings, optional metrics reports
//   failed     job died before any scenario ran (bad trace/platform/config)
//   pong/stats/ok/error  op plumbing
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/sweep.hpp"
#include "svc/json.hpp"

namespace tir::svc {

/// One scenario cell of a job, before platform/rate resolution.
struct ScenarioSpec {
  std::string label;
  core::Backend backend = core::Backend::Smpi;
  std::vector<double> rates;  ///< empty = use the job's calibrated rate
  bool contention = false;    ///< MaxMin link sharing instead of Uncontended
  double watchdog_seconds = 0.0;
};

struct JobRequest {
  std::string op;        ///< "predict" | "ping" | "stats" | "flush" | "shutdown"
  std::uint64_t id = 0;  ///< assigned by the server at admission
  std::string trace;     ///< manifest or TITB path
  int nprocs = -1;       ///< single-file text manifests need it
  std::string platform;  ///< platform file; empty = default flat gigabit cluster
  std::vector<ScenarioSpec> scenarios;
  bool metrics = false;  ///< attach TimelineSinks, stream obs metrics JSON
  /// Optional declarative calibration; scenarios without explicit rates use
  /// its result, and the daemon caches it by (platform, request) key.
  bool calibrate = false;
  core::CalibrationRequest calibration;
  /// Per-job deadline in milliseconds from admission (0 = none).  The server
  /// cancels remaining scenarios between scenarios once it passes; expired
  /// jobs fail with ErrorCode::Cancelled and "expired":true.
  double deadline_ms = 0.0;
  /// Idempotency key ("idem" on the wire, 16 hex chars from content_key()).
  /// A re-submitted key whose job already completed is answered from the
  /// server's result cache, bit-identical to the first run.  Empty = none.
  std::string idem_key;
  /// Platform perturbation spec (platform::PerturbationSpec grammar, see
  /// docs/variability.md).  Empty = replay the platform as described.  When
  /// set, every scenario is expanded over `mc_replicates` seeded platform
  /// instances and the done line carries the aggregate quantiles; the
  /// spec + seed are folded into the platform and calibration cache keys so
  /// perturbed jobs never collide with unperturbed ones (or each other).
  std::string perturb;
  /// Monte Carlo replicates per scenario when `perturb` is set (<= 0: one).
  int mc_replicates = 0;
};

/// The canonical content fingerprint of a predict request: what it asks for
/// (trace, platform, scenarios, calibration, metrics) — not when it must be
/// done by (deadline) and not its identity fields (id, idem).  Retries use
/// this as the idempotency key so a completed job is never re-run.
std::string content_key(const JobRequest& request);

/// Parse one request line.  Throws tir::ParseError/ConfigError on malformed
/// JSON, unknown ops, or missing required fields.
JobRequest parse_request(const std::string& line);

/// Serialize a predict request (the clients' send path).
std::string render_request(const JobRequest& request);

// --- response builders (server side) ----------------------------------------

Json make_rejected(std::uint64_t job, int retry_after_ms, std::size_t queue_depth,
                   std::size_t queue_capacity);
Json make_accepted(std::uint64_t job, std::size_t queue_depth, std::size_t queue_capacity);
Json make_failed(std::uint64_t job, const std::string& error, ErrorCode code);
Json make_scenario(std::uint64_t job, std::size_t index, const core::ScenarioOutcome& outcome);

/// Round-trip a ScenarioOutcome from its wire form (the bench's bit-identity
/// check reads these back).  Unknown fields are ignored.
core::ScenarioOutcome parse_scenario(const Json& response);

}  // namespace tir::svc
