#include "svc/server.hpp"

#include <sys/socket.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/binio.hpp"
#include "core/calibration.hpp"
#include "core/mc_sweep.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/sweep.hpp"
#include "obs/timeline.hpp"
#include "platform/clusters.hpp"
#include "platform/parse.hpp"
#include "titio/reader.hpp"

namespace tir::svc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::uint64_t hash_bytes(std::uint64_t h, const std::string& bytes) {
  // Fold 8 bytes at a time; the tail byte-by-byte.  Stable across runs.
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint64_t chunk = 0;
    for (int b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i + b])) << (8 * b);
    }
    h = binio::mix64(h, chunk);
  }
  for (; i < bytes.size(); ++i) {
    h = binio::mix64(h, static_cast<unsigned char>(bytes[i]));
  }
  return binio::mix64(h, bytes.size());
}

std::string hash_hex(std::uint64_t h) {
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(h));
  return buffer;
}

Json cache_stats_json(const CacheStats& s) {
  Json j = Json::object();
  j.set("hits", s.hits);
  j.set("misses", s.misses);
  j.set("evictions", s.evictions);
  j.set("uncacheable", s.uncacheable);
  j.set("bytes", s.bytes);
  j.set("peak_bytes", s.peak_bytes);
  j.set("entries", s.entries);
  j.set("capacity_bytes", s.capacity_bytes);
  return j;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      queue_(options_.queue_capacity),
      traces_(options_.cache_bytes, "svc.cache.load"),
      // Platforms and calibrated rates are tiny next to decoded traces; give
      // them fixed slices that vanish with the trace budget so cache_bytes=0
      // really is the cold path end to end (the bench depends on that).
      platforms_(options_.cache_bytes == 0 ? 0 : (32ull << 20)),
      calibrations_(options_.cache_bytes == 0 ? 0 : (1ull << 20)),
      results_(options_.cache_bytes == 0 ? 0 : (8ull << 20)) {}

Server::~Server() {
  shutdown();
  wait();
}

void Server::start() {
  listener_ = std::make_unique<Listener>(options_.endpoint);
  const int workers = core::resolve_jobs(options_.workers);
  worker_count_ = workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  if (listener_) listener_->close();  // unblocks accept()
  queue_.close();                     // stops admissions, lets workers drain
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mutex_);
    stop_cv_.wait(lock, [&] { return stopping_.load(); });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Every admitted job has now drained and streamed its results; release the
  // connection readers (they block in recv until their peer hangs up).
  {
    const std::lock_guard<std::mutex> lock(clients_mutex_);
    for (const std::shared_ptr<Client>& client : clients_) {
      if (client->conn.valid()) ::shutdown(client->conn.fd(), SHUT_RDWR);
    }
  }
  for (;;) {
    std::thread t;
    {
      const std::lock_guard<std::mutex> lock(threads_mutex_);
      if (conn_threads_.empty()) break;
      t = std::move(conn_threads_.back());
      conn_threads_.pop_back();
    }
    if (t.joinable()) t.join();
  }
}

void Server::accept_loop() {
  for (;;) {
    LineConn conn = listener_->accept();
    if (!conn.valid()) return;  // listener closed: shutdown
    // Slow-loris defense: a peer stalled mid-line (or not draining results)
    // is cut off; a quietly idle connection is left alone.
    conn.set_timeouts(options_.read_timeout_ms, options_.write_timeout_ms,
                      LineConn::TimeoutMode::MidLine);
    auto client = std::make_shared<Client>(std::move(conn));
    {
      const std::lock_guard<std::mutex> lock(clients_mutex_);
      clients_.push_back(client);
    }
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    conn_threads_.emplace_back([this, client] { handle_connection(std::move(client)); });
  }
}

void Server::worker_loop() {
  Job job;
  while (queue_.pop(job)) {
    run_job(job);
    job = Job{};  // drop the client reference between jobs
  }
}

void Server::handle_connection(std::shared_ptr<Client> client) {
  std::string line;
  try {
    while (client->conn.read_line(line, options_.max_frame)) {
      if (line.empty()) continue;
      handle_line(client, line);
    }
  } catch (const std::exception&) {
    // Oversized line or transport error: drop the connection.  Jobs this
    // client already had admitted still run; their sends just fail quietly.
  }
  // Half-close only: the fd itself is released when the last job holding
  // this Client drops its reference, so an in-flight worker can never race
  // a close()d-and-reused descriptor.
  {
    const std::lock_guard<std::mutex> lock(client->write_mutex);
    if (client->conn.valid()) ::shutdown(client->conn.fd(), SHUT_RDWR);
  }
  const std::lock_guard<std::mutex> lock(clients_mutex_);
  std::erase(clients_, client);
}

void Server::handle_line(const std::shared_ptr<Client>& client, const std::string& line) {
  JobRequest request;
  try {
    request = parse_request(line);
  } catch (const Error& e) {
    Json error = Json::object();
    error.set("type", "error");
    error.set("error", std::string(e.what()));
    error.set("error_code", e.code_name());
    client->send(error);
    return;
  }

  if (request.op == "ping") {
    Json pong = Json::object();
    pong.set("type", "pong");
    client->send(pong);
    return;
  }
  if (request.op == "stats") {
    client->send(stats_json());
    return;
  }
  if (request.op == "flush") {
    traces_.clear();
    platforms_.clear();
    calibrations_.clear();
    results_.clear();
    {
      const std::lock_guard<std::mutex> lock(text_keys_mutex_);
      text_keys_.clear();
    }
    Json ok = Json::object();
    ok.set("type", "ok");
    ok.set("op", "flush");
    client->send(ok);
    return;
  }
  if (request.op == "shutdown") {
    Json ok = Json::object();
    ok.set("type", "ok");
    ok.set("op", "shutdown");
    client->send(ok);
    shutdown();
    return;
  }

  // predict: admit or reject.
  request.id = next_job_id_.fetch_add(1);
  const std::uint64_t id = request.id;
  Job job{std::move(request), client, std::chrono::steady_clock::now()};
  if (job.request.deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline = job.admitted + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          job.request.deadline_ms));
  }
  if (!queue_.try_push(std::move(job))) {
    ++jobs_rejected_;
    client->send(make_rejected(id, options_.retry_after_ms, queue_.size(), queue_.capacity()));
    return;
  }
  ++jobs_admitted_;
  // Note: a fast worker may stream "started" before this "accepted" lands;
  // per-job ordering is only guaranteed within the worker's own stream
  // (started -> scenario... -> done|failed).  Clients key on "type".
  client->send(make_accepted(id, queue_.size(), queue_.capacity()));
}

bool Server::replay_completed(const Job& job) {
  if (job.request.idem_key.empty()) return false;
  const std::uint64_t key =
      hash_bytes(binio::mix64(binio::kHashSeed, 'R'), job.request.idem_key);
  std::shared_ptr<const CompletedJob> completed;
  if (!results_.get(key, completed)) return false;
  // Bit-identical replay of the stored stream, re-stamped with the new job
  // id (the numbers were rendered %.17g once and are copied verbatim).
  ++idempotent_replays_;
  Json started = completed->started;
  started.set("job", job.request.id);
  started.set("idempotent", true);
  job.client->send(started);
  for (const Json& scenario : completed->scenarios) {
    Json line = scenario;
    line.set("job", job.request.id);
    job.client->send(line);
  }
  Json done = completed->done;
  done.set("job", job.request.id);
  done.set("idempotent", true);
  job.client->send(done);
  ++jobs_completed_;
  return true;
}

void Server::run_job(Job& job) {
  const JobRequest& request = job.request;
  const double queue_wait = seconds_since(job.admitted);

  // Deadline already passed while the job sat in the queue: answer cheaply
  // and definitely instead of burning a worker on a stale request.
  if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
    ++jobs_expired_;
    ++jobs_failed_;
    Json failed = make_failed(request.id, "deadline expired before the job started",
                              ErrorCode::Cancelled);
    failed.set("expired", true);
    job.client->send(failed);
    return;
  }

  // Idempotent re-submit of a completed job: serve the cached stream.
  if (replay_completed(job)) return;

  try {
    // --- trace: content-keyed, decode-once ----------------------------------
    bool trace_loaded = false;
    bool degraded = false;
    const auto t_trace = std::chrono::steady_clock::now();
    const auto trace_cost = [](const std::shared_ptr<const titio::SharedTrace>& t) {
      return t->total_actions() * sizeof(tit::Action) + 4096;
    };
    std::uint64_t trace_key = 0;
    if (titio::is_binary_trace(request.trace)) {
      // Cheap fingerprint from the file's stored frame CRCs — no decode, and
      // an edited file naturally misses the old entry.
      titio::Reader reader(request.trace, {});
      trace_key = reader.content_hash();
    } else {
      const std::lock_guard<std::mutex> lock(text_keys_mutex_);
      if (auto it = text_keys_.find(request.trace); it != text_keys_.end()) {
        trace_key = it->second;
      }
    }
    std::shared_ptr<const titio::SharedTrace> trace;
    try {
      if (trace_key == 0) {
        // First sight of a text manifest: load to learn its content hash.
        auto loaded = std::make_shared<const titio::SharedTrace>(
            titio::SharedTrace::load(request.trace, {}, request.nprocs));
        trace_loaded = true;
        trace_key = loaded->content_hash();
        {
          const std::lock_guard<std::mutex> lock(text_keys_mutex_);
          text_keys_[request.trace] = trace_key;
        }
        trace = traces_.get_or_load(trace_key, [&] { return loaded; }, trace_cost);
      } else {
        trace = traces_.get_or_load(
            trace_key,
            [&] {
              trace_loaded = true;
              return std::make_shared<const titio::SharedTrace>(
                  titio::SharedTrace::load(request.trace, {}, request.nprocs));
            },
            trace_cost);
      }
    } catch (const std::bad_alloc&) {
      // Memory pressure on the cache path: shed to cold-path replay instead
      // of failing the job.  Nothing is retained, the prediction itself is
      // unaffected — "degraded" here means "paid the decode again", the
      // service-layer mirror of ReplayResult::degraded.
      degraded = true;
      trace_loaded = true;
      trace = std::make_shared<const titio::SharedTrace>(
          titio::SharedTrace::load(request.trace, {}, request.nprocs));
      if (trace_key == 0) trace_key = trace->content_hash();
    }
    if (degraded) ++jobs_degraded_;
    const double decode_seconds = seconds_since(t_trace);

    // --- platform: keyed by file bytes --------------------------------------
    std::shared_ptr<const platform::Platform> platform;
    std::uint64_t platform_key = 0;
    if (request.platform.empty()) {
      // Default: one gigabit node per rank (same shape replay_cli falls
      // back to), keyed by rank count.
      platform_key = binio::mix64(binio::mix64(binio::kHashSeed, 'D'),
                                  static_cast<std::uint64_t>(trace->nprocs()));
      const int nprocs = trace->nprocs();
      platform = platforms_.get_or_load(
          platform_key,
          [&] {
            auto p = std::make_shared<platform::Platform>();
            platform::ClusterSpec spec;
            spec.nodes = nprocs;
            spec.link_bandwidth = 1.25e8;
            spec.link_latency = 3e-5;
            platform::build_flat_cluster(*p, spec);
            return std::shared_ptr<const platform::Platform>(std::move(p));
          },
          [&](const std::shared_ptr<const platform::Platform>&) {
            return 1024 + 128 * static_cast<std::uint64_t>(nprocs);
          });
    } else {
      const std::string bytes = read_file(request.platform);
      platform_key = hash_bytes(binio::mix64(binio::kHashSeed, 'P'), bytes);
      platform = platforms_.get_or_load(
          platform_key,
          [&] {
            return std::make_shared<const platform::Platform>(
                platform::load_platform(request.platform));
          },
          [&](const std::shared_ptr<const platform::Platform>&) {
            return 1024 + 4 * bytes.size();
          });
    }

    // --- perturbation: seeded platform instances, keys fold spec + seed -----
    // Each replicate's instance is cached under mix(mix(base platform key,
    // canonical-spec hash), instance seed): two jobs that differ only in the
    // perturbation spec or seed can never collide to one cached platform —
    // and because the calibration key below derives from the *effective*
    // platform key, their calibrations cannot collide either (regression
    // test: SvcPerturb.TwoSeedsNeverShareCacheEntries).
    const bool perturbed = !request.perturb.empty();
    tir::platform::PerturbationSpec perturb_spec;
    std::vector<std::uint64_t> mc_seeds;
    std::vector<std::shared_ptr<const tir::platform::Platform>> instances;
    std::uint64_t effective_platform_key = platform_key;
    if (perturbed) {
      perturb_spec = tir::platform::PerturbationSpec::parse(request.perturb);
      const std::uint64_t spec_hash = perturb_spec.hash();
      const int replicates = std::max(1, request.mc_replicates);
      const tir::platform::PlatformModel model(platform, perturb_spec);
      for (int r = 0; r < replicates; ++r) {
        const std::uint64_t seed = perturb_spec.replicate_seed(static_cast<std::uint64_t>(r));
        mc_seeds.push_back(seed);
        const std::uint64_t instance_key =
            binio::mix64(binio::mix64(platform_key, spec_hash), seed);
        instances.push_back(platforms_.get_or_load(
            instance_key, [&] { return model.instantiate(seed); },
            [&](const std::shared_ptr<const tir::platform::Platform>& p) {
              return 1024 + 128 * static_cast<std::uint64_t>(p->host_count());
            }));
      }
      effective_platform_key = binio::mix64(binio::mix64(platform_key, spec_hash), mc_seeds[0]);
    }

    // --- calibration: keyed by effective platform + canonical request -------
    // A perturbed job calibrates on its first replicate instance — the rate
    // then reflects the sampled machine, and the key inherits spec + seed
    // through effective_platform_key.
    double calibrated_rate = 0.0;
    bool calibration_computed = false;
    double calibrate_seconds = 0.0;
    if (request.calibrate) {
      const auto t_calibrate = std::chrono::steady_clock::now();
      const std::uint64_t calibration_key =
          hash_bytes(binio::mix64(effective_platform_key, 'C'),
                     core::calibration_cache_key(request.calibration));
      const tir::platform::Platform& calibration_platform =
          perturbed ? *instances[0] : *platform;
      calibrated_rate = calibrations_.get_or_load(
          calibration_key,
          [&] {
            calibration_computed = true;
            return core::calibrate_rate(calibration_platform, request.calibration);
          },
          [](const double&) { return 8; });
      calibrate_seconds = seconds_since(t_calibrate);
    }

    Json started = Json::object();
    started.set("type", "started");
    started.set("job", request.id);
    started.set("trace_hash", hash_hex(trace_key));
    started.set("trace_cache", trace_loaded ? "miss" : "hit");
    started.set("queue_wait_seconds", queue_wait);
    started.set("decode_seconds", decode_seconds);
    if (degraded) started.set("degraded", true);
    if (request.calibrate) {
      started.set("calibration_cache", calibration_computed ? "miss" : "hit");
      started.set("calibrate_seconds", calibrate_seconds);
      started.set("calibrated_rate", calibrated_rate);
    }
    job.client->send(started);

    // --- scenarios -----------------------------------------------------------
    // Perturbed jobs expand every ScenarioSpec over the replicate seeds,
    // spec-major (replicate r of spec s sits at index s * replicates + r).
    // Scenarios own their sampled platform through the shared_ptr-backed
    // PlatformRef, so a cache eviction mid-sweep cannot dangle them.
    const std::size_t replicates = perturbed ? mc_seeds.size() : 1;
    std::vector<std::unique_ptr<obs::TimelineSink>> sinks;
    std::vector<core::Scenario> scenarios;
    scenarios.reserve(request.scenarios.size() * replicates);
    for (const ScenarioSpec& spec : request.scenarios) {
      for (std::size_t r = 0; r < replicates; ++r) {
        core::Scenario sc;
        sc.platform = perturbed ? tir::platform::PlatformRef(instances[r])
                                : tir::platform::PlatformRef(platform);
        sc.backend = spec.backend;
        sc.label = perturbed ? spec.label + "[seed=" + std::to_string(mc_seeds[r]) + "]"
                             : spec.label;
        sc.config.rates = spec.rates.empty() ? std::vector<double>{calibrated_rate} : spec.rates;
        if (perturbed) {
          // host.speed perturbations reach a time-independent replay only
          // through the calibrated rates (core::scale_rates_for_instance).
          sc.config = core::scale_rates_for_instance(sc.config, trace->nprocs(),
                                                     *platform, *instances[r]);
        }
        sc.config.sharing = spec.contention ? sim::Sharing::MaxMin : sim::Sharing::Uncontended;
        sc.config.watchdog_seconds = spec.watchdog_seconds;
        if (request.metrics) {
          sinks.push_back(std::make_unique<obs::TimelineSink>());
          sc.config.sink = sinks.back().get();
        }
        scenarios.push_back(std::move(sc));
      }
    }

    // Per-job deadline: polled between scenarios; an expired job cancels its
    // remaining scenarios (ErrorCode::Cancelled outcomes) instead of
    // running a prediction nobody is waiting for anymore.
    const core::CancelToken cancel =
        job.has_deadline ? core::CancelToken(job.deadline) : core::CancelToken();

    std::vector<Json> scenario_lines;  // retained for the idempotency cache
    scenario_lines.reserve(scenarios.size());
    core::SweepOptions sweep_options;
    sweep_options.jobs = 1;  // the service parallelizes across jobs, not inside
    sweep_options.cancel = job.has_deadline ? &cancel : nullptr;
    sweep_options.on_scenario_done = [&](std::size_t index,
                                         const core::ScenarioOutcome& outcome) {
      ++(outcome.ok ? scenarios_ok_ : scenarios_failed_);
      scenario_lines.push_back(make_scenario(request.id, index, outcome));
      job.client->send(scenario_lines.back());
    };
    const auto t_replay = std::chrono::steady_clock::now();
    const std::vector<core::ScenarioOutcome> outcomes =
        core::sweep(*trace, scenarios, sweep_options);
    const double replay_seconds = seconds_since(t_replay);

    bool expired = false;
    for (const core::ScenarioOutcome& o : outcomes) {
      if (!o.ok && o.error_code == ErrorCode::Cancelled) expired = true;
    }
    if (expired) ++jobs_expired_;

    Json done = Json::object();
    done.set("type", "done");
    done.set("job", request.id);
    std::size_t ok = 0;
    for (const core::ScenarioOutcome& o : outcomes) ok += o.ok ? 1 : 0;
    done.set("scenarios", outcomes.size());
    done.set("scenarios_ok", ok);
    if (expired) done.set("expired", true);
    if (degraded) done.set("degraded", true);
    done.set("trace_cache", trace_loaded ? "miss" : "hit");
    done.set("queue_wait_seconds", queue_wait);
    done.set("decode_seconds", decode_seconds);
    done.set("calibrate_seconds", calibrate_seconds);
    done.set("replay_seconds", replay_seconds);

    if (perturbed) {
      // Aggregate quantiles per original ScenarioSpec (the expansion is
      // spec-major, so spec s owns outcomes [s*replicates, (s+1)*replicates)).
      // Seeds are 64-bit draws: rendered as decimal strings, not JSON
      // numbers, so they survive double round-tripping bit-exactly.
      Json mc = Json::object();
      mc.set("spec", perturb_spec.canonical());
      Json seeds_json = Json::array();
      for (const std::uint64_t seed : mc_seeds) seeds_json.push_back(std::to_string(seed));
      mc.set("seeds", std::move(seeds_json));
      Json groups = Json::array();
      for (std::size_t s = 0; s < request.scenarios.size(); ++s) {
        std::vector<double> times;
        times.reserve(replicates);
        for (std::size_t r = 0; r < replicates; ++r) {
          const core::ScenarioOutcome& o = outcomes[s * replicates + r];
          if (o.ok) times.push_back(o.result.simulated_time);
        }
        const obs::DistributionSummary d = obs::summarize(std::move(times));
        Json g = Json::object();
        g.set("label", request.scenarios[s].label);
        g.set("n", d.n);
        g.set("mean", d.mean);
        g.set("stddev", d.stddev);
        g.set("min", d.min);
        g.set("max", d.max);
        g.set("p5", d.p5);
        g.set("p25", d.p25);
        g.set("p50", d.p50);
        g.set("p75", d.p75);
        g.set("p95", d.p95);
        g.set("ci95_lo", d.ci95_lo);
        g.set("ci95_hi", d.ci95_hi);
        groups.push_back(std::move(g));
      }
      mc.set("scenarios", std::move(groups));
      done.set("mc", std::move(mc));
    }

    if (request.metrics) {
      obs::SweepAggregator aggregator;
      Json reports = Json::array();
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok) continue;
        const obs::MetricsReport report =
            obs::aggregate(*sinks[i], 65536.0, scenarios[i].platform.get());
        aggregator.record(i, outcomes[i].label, report,
                          {queue_wait, outcomes[i].result.wall_clock_seconds});
        Json entry = Json::object();
        entry.set("label", outcomes[i].label);
        entry.set("report", Json::parse(obs::to_json(report)));
        reports.push_back(std::move(entry));
      }
      const obs::SweepAggregator::Summary summary = aggregator.summary();
      Json s = Json::object();
      s.set("scenarios", summary.scenarios);
      s.set("total_simulated_time", summary.total_simulated_time);
      s.set("total_compute", summary.total_compute);
      s.set("total_comm", summary.total_comm);
      s.set("total_wait", summary.total_wait);
      s.set("total_queue_wait", summary.total_queue_wait);
      s.set("total_replay_wall", summary.total_replay_wall);
      s.set("max_queue_wait", summary.max_queue_wait);
      done.set("metrics", std::move(reports));
      done.set("summary", std::move(s));
    }
    job.client->send(done);
    ++jobs_completed_;

    // Retain the stream for idempotent re-submits — but only clean runs:
    // expired jobs must re-run with a fresh budget, degraded ones should
    // retry the cached path, and metrics streams are too big to be worth it.
    if (!request.idem_key.empty() && !expired && !degraded && !request.metrics) {
      auto completed = std::make_shared<CompletedJob>();
      completed->started = started;
      completed->scenarios = std::move(scenario_lines);
      completed->done = done;
      std::uint64_t cost = 512 + started.dump().size() + done.dump().size();
      for (const Json& line : completed->scenarios) cost += line.dump().size();
      results_.put(hash_bytes(binio::mix64(binio::kHashSeed, 'R'), request.idem_key),
                   std::shared_ptr<const CompletedJob>(std::move(completed)), cost);
    }
  } catch (const Error& e) {
    ++jobs_failed_;
    job.client->send(make_failed(request.id, e.what(), e.code()));
  } catch (const std::exception& e) {
    ++jobs_failed_;
    job.client->send(make_failed(request.id, e.what(), ErrorCode::Internal));
  }
}

Json Server::stats_json() const {
  Json s = Json::object();
  s.set("type", "stats");
  Json queue = Json::object();
  queue.set("depth", queue_.size());
  queue.set("capacity", queue_.capacity());
  queue.set("admitted", jobs_admitted_.load());
  queue.set("rejected", jobs_rejected_.load());
  s.set("queue", std::move(queue));
  Json jobs = Json::object();
  jobs.set("completed", jobs_completed_.load());
  jobs.set("failed", jobs_failed_.load());
  jobs.set("expired", jobs_expired_.load());
  jobs.set("degraded", jobs_degraded_.load());
  jobs.set("idempotent_replays", idempotent_replays_.load());
  jobs.set("scenarios_ok", scenarios_ok_.load());
  jobs.set("scenarios_failed", scenarios_failed_.load());
  s.set("jobs", std::move(jobs));
  s.set("workers", worker_count_);
  s.set("traces", cache_stats_json(traces_.stats()));
  s.set("platforms", cache_stats_json(platforms_.stats()));
  s.set("calibrations", cache_stats_json(calibrations_.stats()));
  s.set("results", cache_stats_json(results_.stats()));
  return s;
}

}  // namespace tir::svc
