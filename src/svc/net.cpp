#include "svc/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "base/error.hpp"

namespace tir::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

struct Parsed {
  bool is_unix = false;
  std::string path;   ///< unix
  std::string host;   ///< tcp
  int port = 0;       ///< tcp
};

Parsed parse_endpoint(const std::string& endpoint) {
  Parsed p;
  if (endpoint.rfind("unix:", 0) == 0) {
    p.is_unix = true;
    p.path = endpoint.substr(5);
    if (p.path.empty()) throw ConfigError("empty unix socket path in '" + endpoint + "'");
    if (p.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw ConfigError("unix socket path too long: " + p.path);
    }
    return p;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("tcp endpoint needs HOST:PORT, got '" + endpoint + "'");
    }
    p.host = rest.substr(0, colon);
    p.port = std::atoi(rest.c_str() + colon + 1);
    if (p.host.empty() || p.port < 0 || p.port > 65535) {
      throw ConfigError("bad tcp endpoint '" + endpoint + "'");
    }
    return p;
  }
  throw ConfigError("endpoint must start with unix: or tcp: — got '" + endpoint + "'");
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("tcp host must be a dotted IPv4 address, got '" + host + "'");
  }
  return addr;
}

}  // namespace

LineConn& LineConn::operator=(LineConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool LineConn::read_line(std::string& out, std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (buffer_.size() > max_line) throw Error("line exceeds " + std::to_string(max_line) + " bytes");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (!buffer_.empty()) {  // final unterminated line
        out = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineConn::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Listener::Listener(const std::string& endpoint) {
  const Parsed p = parse_endpoint(endpoint);
  if (p.is_unix) {
    ::unlink(p.path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket(unix)");
    const sockaddr_un addr = make_unix_addr(p.path);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      fail("bind " + p.path);
    }
    unlink_path_ = p.path;
    endpoint_ = "unix:" + p.path;
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket(tcp)");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = make_tcp_addr(p.host, p.port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      fail("bind " + endpoint);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) fail("getsockname");
    char host[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
    endpoint_ = "tcp:" + std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
  }
  if (::listen(fd_, 64) < 0) fail("listen " + endpoint_);
}

LineConn Listener::accept() {
  for (;;) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return LineConn();  // closed by the shutdown thread
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return LineConn(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after close() from the shutdown thread: orderly stop.
    return LineConn();
  }
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a concurrent accept() in another thread unblocks
    // even on platforms where close() alone leaves it sleeping.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

LineConn dial(const std::string& endpoint) {
  const Parsed p = parse_endpoint(endpoint);
  int fd = -1;
  if (p.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) fail("socket(unix)");
    const sockaddr_un addr = make_unix_addr(p.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("connect " + endpoint);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail("socket(tcp)");
    const sockaddr_in addr = make_tcp_addr(p.host, p.port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail("connect " + endpoint);
    }
  }
  return LineConn(fd);
}

}  // namespace tir::svc
