#include "svc/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "base/error.hpp"
#include "base/fault.hpp"

namespace tir::svc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

struct Parsed {
  bool is_unix = false;
  std::string path;   ///< unix
  std::string host;   ///< tcp
  int port = 0;       ///< tcp
};

Parsed parse_endpoint(const std::string& endpoint) {
  Parsed p;
  if (endpoint.rfind("unix:", 0) == 0) {
    p.is_unix = true;
    p.path = endpoint.substr(5);
    if (p.path.empty()) throw ConfigError("empty unix socket path in '" + endpoint + "'");
    if (p.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw ConfigError("unix socket path too long: " + p.path);
    }
    return p;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw ConfigError("tcp endpoint needs HOST:PORT, got '" + endpoint + "'");
    }
    p.host = rest.substr(0, colon);
    p.port = std::atoi(rest.c_str() + colon + 1);
    if (p.host.empty() || p.port < 0 || p.port > 65535) {
      throw ConfigError("bad tcp endpoint '" + endpoint + "'");
    }
    return p;
  }
  throw ConfigError("endpoint must start with unix: or tcp: — got '" + endpoint + "'");
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw ConfigError("tcp host must be a dotted IPv4 address, got '" + host + "'");
  }
  return addr;
}

void set_socket_timeout(int fd, int option, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

/// Finish a connect() that EINTR interrupted: on POSIX the connection keeps
/// establishing asynchronously, so re-calling connect() is wrong (EALREADY /
/// spurious EADDRINUSE) — poll for writability and read SO_ERROR instead.
void finish_interrupted_connect(int fd, const std::string& endpoint) {
  pollfd pfd{fd, POLLOUT, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, -1);
    if (r > 0) break;
    if (r < 0 && errno == EINTR) continue;
    fail("poll after interrupted connect " + endpoint);
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) fail("getsockopt " + endpoint);
  if (err != 0) {
    errno = err;
    fail("connect " + endpoint);
  }
}

}  // namespace

LineConn& LineConn::operator=(LineConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    timeout_mode_ = other.timeout_mode_;
    other.fd_ = -1;
  }
  return *this;
}

void LineConn::set_timeouts(int recv_ms, int send_ms, TimeoutMode mode) {
  timeout_mode_ = mode;
  if (fd_ < 0) return;
  set_socket_timeout(fd_, SO_RCVTIMEO, recv_ms);
  set_socket_timeout(fd_, SO_SNDTIMEO, send_ms);
}

void LineConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool LineConn::read_line(std::string& out, std::size_t max_line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (buffer_.size() > max_line) throw Error("line exceeds " + std::to_string(max_line) + " bytes");
    switch (fault::point("svc.net.read")) {
      case fault::Kind::Eintr:
        continue;  // what a real EINTR return does: retry the syscall
      case fault::Kind::Reset:
        throw Error("recv: injected connection reset");
      case fault::Kind::Stall:
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break;
      default:
        break;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      if (!buffer_.empty()) {  // final unterminated line
        out = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired.  Whether that is fatal depends on the mode:
        // the server only cuts peers that stalled *mid-line* (slow loris);
        // the client treats any stall as its deadline talking.
        if (timeout_mode_ == TimeoutMode::Always ||
            (timeout_mode_ == TimeoutMode::MidLine && !buffer_.empty())) {
          throw Error("read timeout (" +
                      std::string(buffer_.empty() ? "no data" : "stalled mid-line") + ")");
        }
        continue;
      }
      fail("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool LineConn::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    std::size_t len = framed.size() - sent;
    switch (fault::point("svc.net.write")) {
      case fault::Kind::Eintr:
        continue;  // what a real EINTR return does: retry the syscall
      case fault::Kind::Reset:
        return false;  // peer vanished between our writes
      case fault::Kind::ShortWrite:
        len = 1;  // force the partial-write continuation path
        break;
      default:
        break;
    }
    const ssize_t n = ::send(fd_, framed.data() + sent, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      // SO_SNDTIMEO expired: the peer stopped draining its socket.  Treat
      // it as gone — blocking a worker on a wedged client is the one thing
      // the server must never do.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Listener::Listener(const std::string& endpoint) {
  const Parsed p = parse_endpoint(endpoint);
  if (p.is_unix) {
    ::unlink(p.path.c_str());
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket(unix)");
    const sockaddr_un addr = make_unix_addr(p.path);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      fail("bind " + p.path);
    }
    unlink_path_ = p.path;
    endpoint_ = "unix:" + p.path;
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail("socket(tcp)");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = make_tcp_addr(p.host, p.port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
      fail("bind " + endpoint);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) fail("getsockname");
    char host[INET_ADDRSTRLEN] = {};
    inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
    endpoint_ = "tcp:" + std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
  }
  if (::listen(fd_, 64) < 0) fail("listen " + endpoint_);
}

LineConn Listener::accept() {
  for (;;) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return LineConn();  // closed by the shutdown thread
    if (fault::point("svc.net.accept") == fault::Kind::AcceptFail) {
      continue;  // a transient accept() failure: the loop just retries
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return LineConn(fd);
    if (errno == EINTR) continue;
    // Transient per-connection failures must not stop the accept loop: the
    // peer aborted its own connect (ECONNABORTED) or the host briefly ran
    // out of descriptors/buffers — the next accept() may well succeed.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
      // Resource exhaustion clears when a connection closes; don't hot-spin.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    // EBADF/EINVAL after close() from the shutdown thread: orderly stop.
    return LineConn();
  }
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a concurrent accept() in another thread unblocks
    // even on platforms where close() alone leaves it sleeping.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

LineConn dial(const std::string& endpoint) {
  const Parsed p = parse_endpoint(endpoint);
  if (fault::point("svc.net.dial") == fault::Kind::Reset) {
    errno = ECONNRESET;
    fail("connect " + endpoint + " (injected)");
  }
  sockaddr_un unix_addr{};
  sockaddr_in tcp_addr{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  if (p.is_unix) {
    unix_addr = make_unix_addr(p.path);
    addr = reinterpret_cast<const sockaddr*>(&unix_addr);
    addr_len = sizeof unix_addr;
  } else {
    tcp_addr = make_tcp_addr(p.host, p.port);
    addr = reinterpret_cast<const sockaddr*>(&tcp_addr);
    addr_len = sizeof tcp_addr;
  }
  const int fd = ::socket(p.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail(p.is_unix ? "socket(unix)" : "socket(tcp)");
  if (::connect(fd, addr, addr_len) < 0) {
    if (errno == EINTR) {
      // The connection keeps establishing in the background; wait for it.
      try {
        finish_interrupted_connect(fd, endpoint);
        return LineConn(fd);
      } catch (...) {
        ::close(fd);
        throw;
      }
    }
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + endpoint);
  }
  return LineConn(fd);
}

}  // namespace tir::svc
