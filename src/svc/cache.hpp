// Content-hash-keyed, byte-budgeted LRU cache with single-flight loading.
//
// The daemon's whole economic argument (ROADMAP item 1, after Cornebize &
// Legrand's "many queries over the same inputs") is that repeated prediction
// jobs over the same trace should pay decode and calibration once.  This
// cache is that memory: keys are 64-bit content fingerprints
// (titio::SharedTrace::content_hash, core::calibration_cache_key folded
// through binio::mix64), values are whatever the daemon wants to reuse —
// decoded SharedTraces, parsed platforms, calibrated rates.
//
// Properties:
//
//   * Byte budget, not entry count — a decoded trace can be megabytes while
//     a calibrated rate is 8 bytes, so each entry declares its cost and the
//     cache evicts least-recently-used entries until the budget holds.  An
//     entry larger than the whole budget is returned to the caller but never
//     retained (counted in stats().uncacheable).
//
//   * Single-flight loading — get_or_load() guarantees the loader runs at
//     most once per key even under a stampede of concurrent misses: late
//     arrivals block on the in-flight load and share its result (or rethrow
//     its failure).  A failed load caches nothing.
//
//   * Thread-safe throughout; the loader itself runs outside the cache lock
//     so a slow decode never blocks unrelated hits.
//
// Values must be cheap to copy (shared_ptr-like); SharedTrace and
// shared_ptr<const Platform> both are.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>

#include "base/error.hpp"
#include "base/fault.hpp"

namespace tir::svc {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t uncacheable = 0;  ///< loads larger than the whole budget
  std::uint64_t bytes = 0;        ///< current cost sum of retained entries
  std::uint64_t peak_bytes = 0;
  std::uint64_t entries = 0;
  std::uint64_t capacity_bytes = 0;
};

template <typename V>
class LruCache {
 public:
  /// A zero budget disables retention entirely (every lookup is a miss);
  /// the single-flight guarantee still holds for concurrent loads.
  /// `fault_point` optionally names a fault::point consulted before each
  /// load — Kind::AllocFail makes the load throw std::bad_alloc, which is
  /// how the chaos harness exercises memory-pressure degradation.
  explicit LruCache(std::uint64_t capacity_bytes, const char* fault_point = nullptr)
      : capacity_(capacity_bytes), fault_point_(fault_point) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Look up `key`; on a miss run `loader()` (outside the lock, at most once
  /// per key across threads) and retain its result at `cost(value)` bytes.
  /// Loader exceptions propagate to every waiter of that flight.
  V get_or_load(std::uint64_t key, const std::function<V()>& loader,
                const std::function<std::uint64_t(const V&)>& cost) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (auto it = map_.find(key); it != map_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
        return it->second->value;
      }
      auto flight = flights_.find(key);
      if (flight == flights_.end()) break;
      // Someone else is loading this key: wait for the flight to land, then
      // re-check (the entry may have been evicted again, or the load failed
      // and we should try our own).
      std::shared_ptr<Flight> f = flight->second;
      f->cv.wait(lock, [&] { return f->done; });
      if (f->error) std::rethrow_exception(f->error);
      if (f->has_value) {
        ++stats_.hits;
        return f->value;
      }
    }
    ++stats_.misses;
    auto f = std::make_shared<Flight>();
    flights_.emplace(key, f);
    lock.unlock();

    V value{};
    std::exception_ptr error;
    try {
      if (fault_point_ != nullptr && fault::point(fault_point_) == fault::Kind::AllocFail) {
        throw std::bad_alloc();
      }
      value = loader();
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    flights_.erase(key);
    f->done = true;
    if (error) {
      f->error = error;
      f->cv.notify_all();
      std::rethrow_exception(error);
    }
    f->value = value;
    f->has_value = true;
    f->cv.notify_all();
    insert_locked(key, value, cost(value));
    return value;
  }

  /// Non-loading lookup: true and refresh recency on a hit.
  bool get(std::uint64_t key, V& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->value;
    return true;
  }

  /// Insert/overwrite without the single-flight machinery.
  void put(std::uint64_t key, V value, std::uint64_t cost_bytes) {
    const std::lock_guard<std::mutex> lock(mutex_);
    insert_locked(key, std::move(value), cost_bytes);
  }

  /// Drop everything (the daemon's {"op":"flush"}); stats counters survive.
  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
  }

  CacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    CacheStats s = stats_;
    s.entries = lru_.size();
    s.capacity_bytes = capacity_;
    return s;
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t cost = 0;
    V value{};
  };
  using List = std::list<Entry>;

  struct Flight {
    std::condition_variable cv;
    bool done = false;
    bool has_value = false;
    V value{};
    std::exception_ptr error;
  };

  void insert_locked(std::uint64_t key, V value, std::uint64_t cost_bytes) {
    if (auto it = map_.find(key); it != map_.end()) {
      stats_.bytes -= it->second->cost;
      lru_.erase(it->second);
      map_.erase(it);
    }
    if (cost_bytes > capacity_) {
      ++stats_.uncacheable;
      return;
    }
    while (stats_.bytes + cost_bytes > capacity_ && !lru_.empty()) {
      const Entry& victim = lru_.back();
      stats_.bytes -= victim.cost;
      ++stats_.evictions;
      map_.erase(victim.key);
      lru_.pop_back();
    }
    lru_.push_front(Entry{key, cost_bytes, std::move(value)});
    map_[key] = lru_.begin();
    stats_.bytes += cost_bytes;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes);
  }

  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  const char* fault_point_ = nullptr;  ///< consulted before loads when set
  List lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, typename List::iterator> map_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> flights_;
  CacheStats stats_;
};

}  // namespace tir::svc
