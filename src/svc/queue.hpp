// Bounded admission queue: the daemon's backpressure valve.
//
// Accepting every request and letting latency grow without bound is how a
// service melts under load; the daemon instead admits jobs through this
// fixed-capacity queue and *rejects* the overflow with an explicit
// retry-after hint, so a well-behaved client backs off and a load test gets
// an honest saturation signal (tird-bench counts rejections separately from
// latency).
//
// Shutdown contract (SIGTERM drain): close() stops admissions immediately
// but lets consumers drain everything already admitted — pop() keeps
// returning queued items and only starts returning false once the queue is
// both closed and empty.  Nothing admitted is ever dropped.
//
// T must be movable.  All members are thread-safe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace tir::svc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: false when the queue is full or closed (the
  /// caller turns that into a reject-with-retry-after response).
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      ++pushed_;
    }
    consumer_cv_.notify_one();
    return true;
  }

  /// Blocking consume: false only when closed *and* drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    consumer_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop admissions; wake every blocked consumer.  Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    consumer_cv_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Total items ever admitted (monotone; for the stats endpoint).
  std::size_t pushed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable consumer_cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t pushed_ = 0;
  bool closed_ = false;
};

}  // namespace tir::svc
