#include "svc/protocol.hpp"

#include <cstdio>

#include "base/binio.hpp"
#include "platform/model.hpp"

namespace tir::svc {

namespace {

ScenarioSpec parse_scenario_spec(const Json& s, std::size_t index) {
  if (!s.is_object()) throw ParseError("scenario " + std::to_string(index) + " is not an object");
  ScenarioSpec spec;
  spec.label = s.str_or("label", "scenario" + std::to_string(index));
  const std::string backend = s.str_or("backend", "smpi");
  if (backend == "msg") {
    spec.backend = core::Backend::Msg;
  } else if (backend == "smpi") {
    spec.backend = core::Backend::Smpi;
  } else {
    throw ConfigError("scenario '" + spec.label + "': unknown backend '" + backend + "'");
  }
  const Json& rates = s.get("rates");
  if (rates.is_array()) {
    for (std::size_t i = 0; i < rates.size(); ++i) spec.rates.push_back(rates.at(i).as_number());
  } else if (rates.is_number()) {
    spec.rates.push_back(rates.as_number());
  }
  spec.contention = s.bool_or("contention", false);
  spec.watchdog_seconds = s.num_or("watchdog_seconds", 0.0);
  return spec;
}

core::CalibrationRequest parse_calibration(const Json& c) {
  core::CalibrationRequest request;
  request.procedure = c.str_or("procedure", request.procedure);
  request.classes = c.str_or("classes", request.classes);
  request.iterations = static_cast<int>(c.num_or("iterations", request.iterations));
  request.noise = c.num_or("noise", request.noise);
  request.seed = static_cast<std::uint64_t>(c.num_or("seed", 1));
  request.auto_steps = static_cast<int>(c.num_or("auto_steps", request.auto_steps));
  request.probe_instructions = c.num_or("probe_instructions", request.probe_instructions);
  const std::string cls = c.str_or("instance_class", std::string(1, request.instance_class));
  if (cls.size() != 1) throw ConfigError("calibration instance_class must be one character");
  request.instance_class = cls[0];
  request.instance_nprocs = static_cast<int>(c.num_or("instance_nprocs", request.instance_nprocs));
  const Json& truth = c.get("truth");
  if (!truth.is_object()) {
    throw ConfigError("calibration needs a truth object (rate_in_cache, rate_out_of_cache, "
                      "l2_bytes at minimum)");
  }
  request.truth.rate_in_cache = truth.num_or("rate_in_cache", 0.0);
  request.truth.rate_out_of_cache =
      truth.num_or("rate_out_of_cache", request.truth.rate_in_cache);
  request.truth.l2_bytes = truth.num_or("l2_bytes", 0.0);
  request.truth.copy_rate = truth.num_or("copy_rate", 0.0);
  request.truth.per_message_overhead = truth.num_or("per_message_overhead", 0.0);
  return request;
}

Json render_calibration(const core::CalibrationRequest& request) {
  Json c = Json::object();
  c.set("procedure", request.procedure);
  c.set("classes", request.classes);
  c.set("iterations", request.iterations);
  c.set("noise", request.noise);
  c.set("seed", request.seed);
  c.set("auto_steps", request.auto_steps);
  c.set("probe_instructions", request.probe_instructions);
  c.set("instance_class", std::string(1, request.instance_class));
  c.set("instance_nprocs", request.instance_nprocs);
  Json truth = Json::object();
  truth.set("rate_in_cache", request.truth.rate_in_cache);
  truth.set("rate_out_of_cache", request.truth.rate_out_of_cache);
  truth.set("l2_bytes", request.truth.l2_bytes);
  truth.set("copy_rate", request.truth.copy_rate);
  truth.set("per_message_overhead", request.truth.per_message_overhead);
  c.set("truth", std::move(truth));
  return c;
}

}  // namespace

JobRequest parse_request(const std::string& line) {
  const Json j = Json::parse(line);
  if (!j.is_object()) throw ParseError("request is not a JSON object");
  JobRequest request;
  request.op = j.str_or("op", "predict");
  if (request.op == "ping" || request.op == "stats" || request.op == "flush" ||
      request.op == "shutdown") {
    return request;
  }
  if (request.op != "predict") throw ConfigError("unknown op '" + request.op + "'");

  request.trace = j.str_or("trace", "");
  if (request.trace.empty()) throw ConfigError("predict needs a trace path");
  request.nprocs = static_cast<int>(j.num_or("nprocs", -1));
  request.platform = j.str_or("platform", "");
  request.metrics = j.bool_or("metrics", false);
  request.deadline_ms = j.num_or("deadline_ms", 0.0);
  if (request.deadline_ms < 0) throw ConfigError("deadline_ms must be >= 0");
  request.idem_key = j.str_or("idem", "");
  request.perturb = j.str_or("perturb", "");
  if (!request.perturb.empty()) {
    // Validate the grammar at the wire so a malformed spec fails the request
    // (ConfigError) instead of a worker mid-job.
    (void)platform::PerturbationSpec::parse(request.perturb);
  }
  request.mc_replicates = static_cast<int>(j.num_or("mc_replicates", 0));
  if (request.mc_replicates < 0) throw ConfigError("mc_replicates must be >= 0");
  if (request.mc_replicates > 0 && request.perturb.empty()) {
    throw ConfigError("mc_replicates needs a perturb spec");
  }

  const Json& calibration = j.get("calibration");
  if (calibration.is_object()) {
    request.calibrate = true;
    request.calibration = parse_calibration(calibration);
  }

  const Json& scenarios = j.get("scenarios");
  if (scenarios.is_array()) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      request.scenarios.push_back(parse_scenario_spec(scenarios.at(i), i));
    }
  }
  if (request.scenarios.empty()) {
    // Default: one SMPI scenario at the calibrated (or default) rate.
    ScenarioSpec spec;
    spec.label = "default";
    request.scenarios.push_back(spec);
  }
  for (const ScenarioSpec& spec : request.scenarios) {
    if (spec.rates.empty() && !request.calibrate) {
      throw ConfigError("scenario '" + spec.label +
                        "' has no rates and the job has no calibration");
    }
  }
  return request;
}

std::string render_request(const JobRequest& request) {
  Json j = Json::object();
  j.set("op", request.op.empty() ? "predict" : request.op);
  if (j.get("op").as_string() != "predict") return j.dump();
  j.set("trace", request.trace);
  if (request.nprocs > 0) j.set("nprocs", request.nprocs);
  if (!request.platform.empty()) j.set("platform", request.platform);
  if (request.metrics) j.set("metrics", true);
  if (request.deadline_ms > 0) j.set("deadline_ms", request.deadline_ms);
  if (!request.idem_key.empty()) j.set("idem", request.idem_key);
  if (!request.perturb.empty()) j.set("perturb", request.perturb);
  if (request.mc_replicates > 0) j.set("mc_replicates", request.mc_replicates);
  if (request.calibrate) j.set("calibration", render_calibration(request.calibration));
  Json scenarios = Json::array();
  for (const ScenarioSpec& spec : request.scenarios) {
    Json s = Json::object();
    s.set("label", spec.label);
    s.set("backend", core::backend_name(spec.backend));
    if (!spec.rates.empty()) {
      Json rates = Json::array();
      for (const double r : spec.rates) rates.push_back(r);
      s.set("rates", std::move(rates));
    }
    if (spec.contention) s.set("contention", true);
    if (spec.watchdog_seconds > 0) s.set("watchdog_seconds", spec.watchdog_seconds);
    scenarios.push_back(std::move(s));
  }
  j.set("scenarios", std::move(scenarios));
  return j.dump();
}

std::string content_key(const JobRequest& request) {
  JobRequest canonical = request;
  canonical.id = 0;
  canonical.deadline_ms = 0.0;
  canonical.idem_key.clear();
  const std::string rendered = render_request(canonical);
  std::uint64_t h = binio::mix64(binio::kHashSeed, 'I');
  for (const char c : rendered) h = binio::mix64(h, static_cast<unsigned char>(c));
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(h));
  return buffer;
}

Json make_rejected(std::uint64_t job, int retry_after_ms, std::size_t queue_depth,
                   std::size_t queue_capacity) {
  Json r = Json::object();
  r.set("type", "rejected");
  r.set("job", job);
  r.set("retry_after_ms", retry_after_ms);
  r.set("queue_depth", queue_depth);
  r.set("queue_capacity", queue_capacity);
  r.set("error", "admission queue full");
  return r;
}

Json make_accepted(std::uint64_t job, std::size_t queue_depth, std::size_t queue_capacity) {
  Json r = Json::object();
  r.set("type", "accepted");
  r.set("job", job);
  r.set("queue_depth", queue_depth);
  r.set("queue_capacity", queue_capacity);
  return r;
}

Json make_failed(std::uint64_t job, const std::string& error, ErrorCode code) {
  Json r = Json::object();
  r.set("type", "failed");
  r.set("job", job);
  r.set("error", error);
  r.set("error_code", error_code_name(code));
  return r;
}

Json make_scenario(std::uint64_t job, std::size_t index, const core::ScenarioOutcome& outcome) {
  Json r = Json::object();
  r.set("type", "scenario");
  r.set("job", job);
  r.set("index", index);
  r.set("label", outcome.label);
  r.set("ok", outcome.ok);
  if (outcome.ok) {
    r.set("simulated_time", outcome.result.simulated_time);
    r.set("actions_replayed", outcome.result.actions_replayed);
    r.set("engine_steps", outcome.result.engine_steps);
    r.set("wall_clock_seconds", outcome.result.wall_clock_seconds);
    if (outcome.result.degraded) {
      r.set("degraded", true);
      r.set("skipped_actions", outcome.result.skipped_actions);
    }
  } else {
    r.set("error", outcome.error);
    r.set("error_code", error_code_name(outcome.error_code));
  }
  return r;
}

core::ScenarioOutcome parse_scenario(const Json& response) {
  core::ScenarioOutcome outcome;
  outcome.label = response.str_or("label", "");
  outcome.ok = response.bool_or("ok", false);
  if (outcome.ok) {
    outcome.result.simulated_time = response.num_or("simulated_time", 0.0);
    outcome.result.actions_replayed =
        static_cast<std::uint64_t>(response.num_or("actions_replayed", 0));
    outcome.result.engine_steps = static_cast<std::uint64_t>(response.num_or("engine_steps", 0));
    outcome.result.wall_clock_seconds = response.num_or("wall_clock_seconds", 0.0);
    outcome.result.degraded = response.bool_or("degraded", false);
    outcome.result.skipped_actions =
        static_cast<std::uint64_t>(response.num_or("skipped_actions", 0));
  } else {
    outcome.error = response.str_or("error", "");
    const std::string code = response.str_or("error_code", "error");
    for (int c = 0; c <= static_cast<int>(kLastErrorCode); ++c) {
      if (code == error_code_name(static_cast<ErrorCode>(c))) {
        outcome.error_code = static_cast<ErrorCode>(c);
        break;
      }
    }
  }
  return outcome;
}

}  // namespace tir::svc
