// Client side of the tird protocol, shared by tir-submit, tird-bench and the
// service tests: dial the daemon, submit one job at a time, collect the
// streamed responses into a JobResult.
//
// A Client wraps one connection and is single-threaded: submit() blocks
// until the job reaches a terminal response (rejected / done / failed).
// Load generators wanting concurrency open one Client per in-flight job
// (that is also what exercises the daemon's admission control honestly).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/net.hpp"
#include "svc/protocol.hpp"

namespace tir::svc {

/// Everything one job's response stream said.
struct JobResult {
  std::uint64_t id = 0;
  bool accepted = false;
  bool rejected = false;  ///< backpressure: retry after retry_after_ms
  int retry_after_ms = 0;
  bool done = false;    ///< full scenario stream received
  bool failed = false;  ///< job-level failure (bad trace/platform/config)
  std::string error;
  std::string error_code;
  /// The failure was transport-level (dial/read/write died, EOF mid-job) —
  /// the server never gave a verdict, so the job is safe to retry.
  bool transport = false;
  /// The server reported deadline expiry ("expired":true on failed/done).
  bool expired = false;
  /// Submits actually sent by submit_with_retry (1 for plain submit).
  int attempts = 0;

  Json started;                 ///< the "started" response (cache truth, timings)
  std::vector<Json> scenarios;  ///< "scenario" responses in completion order
  Json epilogue;                ///< the "done" response (phase timings, metrics)

  bool trace_cache_hit() const { return started.str_or("trace_cache", "") == "hit"; }
  double queue_wait_seconds() const { return epilogue.num_or("queue_wait_seconds", 0.0); }
};

class Client {
 public:
  /// Dial the daemon; throws tir::Error if it is not listening.
  explicit Client(const std::string& endpoint);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Arm per-direction socket timeouts (deadline semantics: any read stall
  /// throws inside submit and is reported as a transport failure).
  void set_timeouts(int recv_ms, int send_ms) {
    conn_.set_timeouts(recv_ms, send_ms, LineConn::TimeoutMode::Always);
  }

  /// Submit one predict job and block until its terminal response.
  /// Transport-level failures (reset, timeout, EOF mid-job) come back as
  /// failed results with transport=true — submit never throws once dialed.
  JobResult submit(const JobRequest& request);

  /// Liveness probe; false when the daemon hung up instead of answering.
  bool ping();

  /// The daemon's {"type":"stats"} snapshot.
  Json stats();

  /// Drop the daemon's caches.
  bool flush();

  /// Ask the daemon to drain and exit (it acknowledges before stopping).
  bool shutdown_server();

 private:
  /// Send one op line and read responses until `expect_type` (skipping any
  /// stray lines); null Json on EOF.
  Json roundtrip(const std::string& line, const std::string& expect_type);

  LineConn conn_;
};

/// How submit_with_retry backs off: exponential with decorrelated jitter
/// (sleep = min(max_backoff, uniform(base, 3 * previous)); AWS-style),
/// seeded so a given (seed, attempt) sequence is reproducible run-to-run.
struct RetryPolicy {
  int max_attempts = 5;
  double base_ms = 10.0;          ///< first backoff and jitter floor
  double max_backoff_ms = 2000.0;
  /// Overall wall-clock budget across all attempts (0 = none).  Also sent
  /// to the server as the per-request deadline_ms (the remaining budget),
  /// and armed as the socket read timeout so a stalled daemon cannot hold
  /// the client past its deadline.
  double deadline_seconds = 0.0;
  std::uint64_t seed = 1;
};

/// One backoff decision, for -v style reporting of the schedule used.
struct RetryEvent {
  int attempt = 0;        ///< the attempt that just ended (1-based)
  double backoff_ms = 0;  ///< sleep before the next attempt
  std::string reason;     ///< "rejected" | "transport" | ...
};

/// Trips open after `threshold` consecutive transport failures; fast-fails
/// submits while open; half-opens after `cooldown_seconds` to probe with a
/// single attempt.  Thread-safe: load generators share one across clients.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold = 5, double cooldown_seconds = 1.0)
      : threshold_(threshold), cooldown_seconds_(cooldown_seconds) {}

  /// May an attempt proceed?  (Half-open: the first caller after cooldown.)
  bool allow();
  void record_success();
  void record_failure();
  bool open() const;
  int consecutive_failures() const;

 private:
  mutable std::mutex mutex_;
  int threshold_;
  double cooldown_seconds_;
  int failures_ = 0;
  bool open_ = false;
  std::chrono::steady_clock::time_point opened_{};
};

/// Resilient submit: a fresh connection per attempt, exponential backoff
/// with decorrelated jitter, the server's retry_after_ms hint honored as the
/// backoff floor, an optional overall deadline, and idempotent re-submits —
/// the request is stamped with its content key (unless the caller already
/// set idem_key), so an attempt that completed server-side but died on the
/// response path is answered from the daemon's result cache bit-identically
/// instead of re-running.
///
/// `breaker` (optional) is consulted before each attempt and fed the
/// attempt outcomes.  `schedule` (optional) records every backoff decision
/// for -v reporting.  Returns the last attempt's JobResult with .attempts
/// filled in; never throws for transport-shaped failures.
JobResult submit_with_retry(const std::string& endpoint, JobRequest request,
                            const RetryPolicy& policy = {}, CircuitBreaker* breaker = nullptr,
                            std::vector<RetryEvent>* schedule = nullptr);

}  // namespace tir::svc
