// Client side of the tird protocol, shared by tir-submit, tird-bench and the
// service tests: dial the daemon, submit one job at a time, collect the
// streamed responses into a JobResult.
//
// A Client wraps one connection and is single-threaded: submit() blocks
// until the job reaches a terminal response (rejected / done / failed).
// Load generators wanting concurrency open one Client per in-flight job
// (that is also what exercises the daemon's admission control honestly).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/net.hpp"
#include "svc/protocol.hpp"

namespace tir::svc {

/// Everything one job's response stream said.
struct JobResult {
  std::uint64_t id = 0;
  bool accepted = false;
  bool rejected = false;  ///< backpressure: retry after retry_after_ms
  int retry_after_ms = 0;
  bool done = false;    ///< full scenario stream received
  bool failed = false;  ///< job-level failure (bad trace/platform/config)
  std::string error;
  std::string error_code;

  Json started;                 ///< the "started" response (cache truth, timings)
  std::vector<Json> scenarios;  ///< "scenario" responses in completion order
  Json epilogue;                ///< the "done" response (phase timings, metrics)

  bool trace_cache_hit() const { return started.str_or("trace_cache", "") == "hit"; }
  double queue_wait_seconds() const { return epilogue.num_or("queue_wait_seconds", 0.0); }
};

class Client {
 public:
  /// Dial the daemon; throws tir::Error if it is not listening.
  explicit Client(const std::string& endpoint);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Submit one predict job and block until its terminal response.
  JobResult submit(const JobRequest& request);

  /// Liveness probe; false when the daemon hung up instead of answering.
  bool ping();

  /// The daemon's {"type":"stats"} snapshot.
  Json stats();

  /// Drop the daemon's caches.
  bool flush();

  /// Ask the daemon to drain and exit (it acknowledges before stopping).
  bool shutdown_server();

 private:
  /// Send one op line and read responses until `expect_type` (skipping any
  /// stray lines); null Json on EOF.
  Json roundtrip(const std::string& line, const std::string& expect_type);

  LineConn conn_;
};

}  // namespace tir::svc
