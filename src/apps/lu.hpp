// Performance model of the NAS Parallel Benchmarks LU application.
//
// LU is the application the paper's whole evaluation runs on: a 3-D SSOR
// solver whose parallelization (NPB 3.x, MPI flavour) lays a 2-D process
// grid over the x-y plane and sweeps k-planes as a pipelined wavefront.
// Each SSOR iteration is:
//
//   rhs       - halo exchange with the four neighbours (large faces,
//               >=64 KiB for the classes of interest -> rendezvous), then
//               per-point right-hand-side computation;
//   jacld/blts  lower-triangular sweep: for every k-plane, receive pencil
//               edges from north and west, compute, send to south and east
//               (5 doubles per boundary point: a few KiB -> eager);
//   jacu/buts - upper-triangular sweep, mirrored;
//   add       - per-point solution update;
//   norm      - residual allreduce (occasionally).
//
// This module does not do floating-point math; it produces, per rank, the
// exact *event stream* of such an execution: compute volumes (instructions
// at -O0, plus function-call counts for the instrumentation model) and
// communications (partners and byte volumes).  The volume constants are
// calibrated so class B totals match the per-process counter values the
// paper reports (1.70e11 instructions/process for B-8; see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace tir::apps {

/// NPB problem classes (grid extent and SSOR iteration count).
struct NasClass {
  char name = 'A';
  int nx = 64, ny = 64, nz = 64;
  int iterations = 250;
};

NasClass nas_class(char name);  ///< 'S','W','A','B','C','D'; throws on other

struct LuConfig {
  NasClass cls;
  int nprocs = 4;               ///< must be a power of two (NPB LU rule)
  int iterations_override = -1; ///< > 0: run fewer SSOR iterations (benches)

  int iterations() const {
    return iterations_override > 0 ? iterations_override : cls.iterations;
  }
  std::string label() const;  ///< "B-8"
};

/// The NPB LU 2-D process grid: np = px * py with px = 2^ceil(k/2).
struct LuGrid {
  int px = 1, py = 1;
  int nx = 1, ny = 1;

  LuGrid() = default;
  LuGrid(const LuConfig& cfg);

  int col(int rank) const { return rank % px; }
  int row(int rank) const { return rank / px; }
  int rank_of(int r, int c) const { return r * px + c; }
  /// Near-equal split with remainder spread over the low columns/rows.
  int nx_loc(int c) const { return nx / px + (c < nx % px ? 1 : 0); }
  int ny_loc(int r) const { return ny / py + (r < ny % py ? 1 : 0); }
};

/// Phase tags: the machine model prices instructions per phase and the
/// instrumentation model needs call densities per phase.
enum class LuPhase : std::uint8_t { Init, Rhs, Jacld, Blts, Jacu, Buts, Add, Norm };

struct LuEvent {
  enum class Type : std::uint8_t { Init, Compute, Send, Recv, Bcast, AllReduce, Finalize };
  Type type = Type::Compute;
  LuPhase phase = LuPhase::Init;
  double instructions = 0.0;  ///< compute volume at -O0 (Type::Compute)
  double calls = 0.0;         ///< function calls inside the region (fine probes)
  std::int32_t partner = -1;  ///< peer rank (send/recv) or root (bcast)
  double bytes = 0.0;         ///< message volume
  double compute2 = 0.0;      ///< reduction compute (allreduce)
};

/// Per-point instruction costs (-O0) of each phase, and fixed per-plane
/// costs. Exposed so tests can pin the calibration.
struct LuCosts {
  double rhs = 1550.0;
  double jacld = 880.0;
  double blts = 780.0;
  double jacu = 880.0;
  double buts = 780.0;
  double add = 260.0;
  double per_plane = 2500.0;      ///< loop setup per k-plane per sweep phase
  double calls_per_instr = 2.0e-4;///< function-call density of the code
  double calls_per_plane = 9.0;   ///< calls per k-plane invocation
  double norm_compute = 4.0e5;    ///< residual reduction work
};

/// Total -O0 application instructions of one rank (sum over its events).
double lu_rank_instructions(const LuConfig& cfg, int rank, const LuCosts& costs = {});

/// Bytes held per point of a k-plane slab (sets the SSOR working set that
/// the cache model compares against L2).  900 B/point places the paper's
/// regimes correctly: A-4 (0.92 MiB) barely fits bordereau's 1 MiB L2,
/// B-8 spills slightly, B-4/C-4/C-8 spill fully, and all evaluated
/// instances except C-8 fit graphene's 2 MiB (paper §§2.3, 3.4).
inline constexpr double kBytesPerPlanePoint = 900.0;

/// SSOR working set of one rank: its local k-plane slab.
double lu_working_set_bytes(const LuConfig& cfg, int rank);

/// Generate the full event stream of `rank`. Deterministic.
std::vector<LuEvent> lu_events(const LuConfig& cfg, int rank, const LuCosts& costs = {});

}  // namespace tir::apps
