// EP-like embarrassingly parallel kernel: a Time-Independent Trace
// generator for a compute-dominated workload (NPB EP shape: independent
// random-number blocks, one tiny allreduce at the end).
//
// The paper notes its framework was already accurate for compute-intensive
// applications; EP is the canonical member of that family and serves as an
// example workload and a replay regression anchor.
#pragma once

#include "tit/trace.hpp"

namespace tir::apps {

struct EpConfig {
  int nprocs = 4;
  double total_instructions = 4e10;  ///< split evenly across ranks
  int blocks = 16;                   ///< compute chunks per rank
};

/// Generate the trace directly (EP has no interesting acquisition story).
tit::Trace ep_trace(const EpConfig& cfg);

}  // namespace tir::apps
