#include "apps/ep.hpp"

#include "base/error.hpp"

namespace tir::apps {

tit::Trace ep_trace(const EpConfig& cfg) {
  TIR_ASSERT(cfg.nprocs >= 1);
  TIR_ASSERT(cfg.blocks >= 1);
  tit::Trace trace(cfg.nprocs);
  const double per_rank = cfg.total_instructions / cfg.nprocs;
  const double per_block = per_rank / cfg.blocks;
  for (int r = 0; r < cfg.nprocs; ++r) {
    trace.push({tit::ActionType::Init, r, -1, 0, 0});
    for (int b = 0; b < cfg.blocks; ++b) {
      trace.push({tit::ActionType::Compute, r, -1, per_block, 0});
    }
    // Tally of the random-pair counts: 10 doubles, trivial reduction work.
    trace.push({tit::ActionType::AllReduce, r, -1, 80.0, 1e4});
    trace.push({tit::ActionType::Finalize, r, -1, 0, 0});
  }
  return trace;
}

}  // namespace tir::apps
