// Jacobi 2-D stencil trace generator: a communication-regular workload with
// a 1-D process decomposition, halo exchanges every iteration and a
// convergence allreduce every `check_every` iterations.
//
// Used by the examples (cluster dimensioning) and as a second pattern for
// replay tests: unlike LU it has no wavefront, so its communication is not
// latency-chain dominated.
#pragma once

#include "tit/trace.hpp"

namespace tir::apps {

struct JacobiConfig {
  int nprocs = 4;
  int nx = 1024, ny = 1024;       ///< global grid
  int iterations = 100;
  double instr_per_point = 12.0;  ///< stencil update cost
  int check_every = 10;           ///< residual allreduce cadence
};

/// Row-block decomposition: rank r owns ny/nprocs rows; halos are full rows
/// (nx * 8 bytes) exchanged with up/down neighbours.
tit::Trace jacobi_trace(const JacobiConfig& cfg);

}  // namespace tir::apps
