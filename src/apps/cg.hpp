// CG-like trace generator: a latency-sensitive workload dominated by short
// allreduces (the dot products of a conjugate-gradient iteration) plus
// medium-sized halo exchanges along a ring.
//
// CG is the stress case for collective modelling: with two allreduces per
// iteration the monolithic-collective back-end and the point-to-point one
// diverge quickly, so it complements LU (eager point-to-point pressure) in
// examples and regression tests.
#pragma once

#include "tit/trace.hpp"

namespace tir::apps {

struct CgConfig {
  int nprocs = 4;
  int iterations = 75;             ///< NPB CG class A/B use 75
  double matvec_instructions = 6e8;///< per-rank sparse mat-vec cost
  double dot_instructions = 2e6;   ///< per-rank dot-product cost
  double exchange_bytes = 28000.0; ///< row-partition exchange (eager-sized)
};

tit::Trace cg_trace(const CgConfig& cfg);

}  // namespace tir::apps
