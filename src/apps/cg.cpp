#include "apps/cg.hpp"

#include "base/error.hpp"

namespace tir::apps {

tit::Trace cg_trace(const CgConfig& cfg) {
  TIR_ASSERT(cfg.nprocs >= 1);
  tit::Trace trace(cfg.nprocs);
  for (int r = 0; r < cfg.nprocs; ++r) {
    const int right = (r + 1) % cfg.nprocs;
    const int left = (r - 1 + cfg.nprocs) % cfg.nprocs;
    trace.push({tit::ActionType::Init, r, -1, 0, 0});
    trace.push({tit::ActionType::Bcast, r, 0, 56.0, 0});
    for (int it = 0; it < cfg.iterations; ++it) {
      // Sparse mat-vec with ring partition exchange.
      if (cfg.nprocs > 1) {
        if (r % 2 == 0) {
          trace.push({tit::ActionType::Send, r, right, cfg.exchange_bytes, 0});
          trace.push({tit::ActionType::Recv, r, left, cfg.exchange_bytes, 0});
        } else {
          trace.push({tit::ActionType::Recv, r, left, cfg.exchange_bytes, 0});
          trace.push({tit::ActionType::Send, r, right, cfg.exchange_bytes, 0});
        }
      }
      trace.push({tit::ActionType::Compute, r, -1, cfg.matvec_instructions, 0});
      // Two dot products per CG iteration: rho and alpha denominators.
      trace.push({tit::ActionType::AllReduce, r, -1, 8.0, cfg.dot_instructions});
      trace.push({tit::ActionType::Compute, r, -1, cfg.dot_instructions, 0});
      trace.push({tit::ActionType::AllReduce, r, -1, 8.0, cfg.dot_instructions});
    }
    trace.push({tit::ActionType::Finalize, r, -1, 0, 0});
  }
  return trace;
}

}  // namespace tir::apps
