#include "apps/jacobi.hpp"

#include "base/error.hpp"

namespace tir::apps {

tit::Trace jacobi_trace(const JacobiConfig& cfg) {
  TIR_ASSERT(cfg.nprocs >= 1);
  TIR_ASSERT(cfg.iterations >= 1);
  tit::Trace trace(cfg.nprocs);
  const double halo_bytes = 8.0 * cfg.nx;
  for (int r = 0; r < cfg.nprocs; ++r) {
    const int rows = cfg.ny / cfg.nprocs + (r < cfg.ny % cfg.nprocs ? 1 : 0);
    const double pts = static_cast<double>(rows) * cfg.nx;
    const int up = r > 0 ? r - 1 : -1;
    const int down = r < cfg.nprocs - 1 ? r + 1 : -1;
    trace.push({tit::ActionType::Init, r, -1, 0, 0});
    trace.push({tit::ActionType::Bcast, r, 0, 24.0, 0});
    for (int it = 0; it < cfg.iterations; ++it) {
      // Red-black ordered halo exchange (deadlock-free under replay).
      if (r % 2 == 0) {
        if (down >= 0) trace.push({tit::ActionType::Send, r, down, halo_bytes, 0});
        if (up >= 0) trace.push({tit::ActionType::Send, r, up, halo_bytes, 0});
        if (down >= 0) trace.push({tit::ActionType::Recv, r, down, halo_bytes, 0});
        if (up >= 0) trace.push({tit::ActionType::Recv, r, up, halo_bytes, 0});
      } else {
        if (up >= 0) trace.push({tit::ActionType::Recv, r, up, halo_bytes, 0});
        if (down >= 0) trace.push({tit::ActionType::Recv, r, down, halo_bytes, 0});
        if (up >= 0) trace.push({tit::ActionType::Send, r, up, halo_bytes, 0});
        if (down >= 0) trace.push({tit::ActionType::Send, r, down, halo_bytes, 0});
      }
      trace.push({tit::ActionType::Compute, r, -1, cfg.instr_per_point * pts, 0});
      if ((it + 1) % cfg.check_every == 0) {
        trace.push({tit::ActionType::AllReduce, r, -1, 8.0, 2.0 * pts});
      }
    }
    trace.push({tit::ActionType::Finalize, r, -1, 0, 0});
  }
  return trace;
}

}  // namespace tir::apps
