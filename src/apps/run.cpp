#include "apps/run.hpp"

namespace tir::apps {

namespace {

/// Per-rank driver: walks the event stream through the instrumentation
/// model and the SMPI runtime.
sim::Coro drive_rank(sim::Ctx& ctx, int me, const LuConfig& lu, const MachineModel& machine,
                     const AcquisitionConfig& acq, smpi::World& world, hwc::Instrument& instr,
                     double& compute_seconds, tit::Trace* trace) {
  const std::vector<LuEvent> events = lu_events(lu, me);
  const double ws = lu_working_set_bytes(lu, me);
  const double app_rate = machine.app_rate(ws);
  const double probe_rate = machine.probe_rate();
  std::uint64_t event_index = 0;
  // MPI probes adjacent to the upcoming compute region: their leaking slice
  // is counted inside that region's counter window.
  double pending_mpi_boundaries = 0.0;

  const auto trace_push = [&](tit::ActionType type, int partner, double volume,
                              double volume2 = 0.0) {
    if (trace != nullptr) trace->push({type, me, partner, volume, volume2});
  };

  for (const LuEvent& ev : events) {
    ++event_index;
    switch (ev.type) {
      case LuEvent::Type::Init:
        trace_push(tit::ActionType::Init, -1, 0.0);
        break;

      case LuEvent::Type::Finalize:
        trace_push(tit::ActionType::Finalize, -1, 0.0);
        break;

      case LuEvent::Type::Compute: {
        const hwc::RegionEffect eff = instr.process_region(
            {ev.instructions, ev.calls, std::max(pending_mpi_boundaries, 1.0)});
        pending_mpi_boundaries = 0.0;
        const double app = ev.instructions * acq.compiler.instr_factor;
        const double probes = eff.executed - app;
        const double t0 = ctx.now();
        // Application work runs at the cache-regime rate with noise; probe
        // code is hot and runs at the in-cache rate.
        co_await ctx.execute_at(app, app_rate / machine.noise_factor(
                                          static_cast<std::uint64_t>(me), event_index));
        // Calibration divides counter values by *application* compute time
        // (the original run's region timings), so stop the clock here.
        compute_seconds += ctx.now() - t0;
        if (probes > 0.0) co_await ctx.execute_at(probes, probe_rate);
        if (eff.stall_seconds > 0.0) co_await ctx.sleep(eff.stall_seconds);
        // The trace records what the counter *measured*, which is the whole
        // point of the paper's Figs 1/2/4/5: an inflated counter value ends
        // up as the trace's compute volume.
        trace_push(tit::ActionType::Compute, -1,
                   instr.granularity() == hwc::Granularity::None ? app : eff.measured);
        break;
      }

      case LuEvent::Type::Send: {
        const hwc::CallEffect eff = instr.process_mpi_call();
        pending_mpi_boundaries += 1.0;
        if (eff.executed > 0.0) co_await ctx.execute_at(eff.executed, probe_rate);
        if (eff.stall_seconds > 0.0) co_await ctx.sleep(eff.stall_seconds);
        co_await world.send(ctx, me, ev.partner, ev.bytes);
        trace_push(tit::ActionType::Send, ev.partner, ev.bytes);
        break;
      }

      case LuEvent::Type::Recv: {
        const hwc::CallEffect eff = instr.process_mpi_call();
        pending_mpi_boundaries += 1.0;
        if (eff.executed > 0.0) co_await ctx.execute_at(eff.executed, probe_rate);
        if (eff.stall_seconds > 0.0) co_await ctx.sleep(eff.stall_seconds);
        co_await world.recv(ctx, me, ev.partner, ev.bytes);
        trace_push(tit::ActionType::Recv, ev.partner, ev.bytes);
        break;
      }

      case LuEvent::Type::Bcast: {
        const hwc::CallEffect eff = instr.process_mpi_call();
        pending_mpi_boundaries += 1.0;
        if (eff.executed > 0.0) co_await ctx.execute_at(eff.executed, probe_rate);
        co_await world.bcast(ctx, me, ev.bytes, ev.partner);
        trace_push(tit::ActionType::Bcast, ev.partner, ev.bytes);
        break;
      }

      case LuEvent::Type::AllReduce: {
        const hwc::CallEffect eff = instr.process_mpi_call();
        pending_mpi_boundaries += 1.0;
        if (eff.executed > 0.0) co_await ctx.execute_at(eff.executed, probe_rate);
        co_await world.allreduce(ctx, me, ev.bytes, ev.compute2);
        trace_push(tit::ActionType::AllReduce, -1, ev.bytes, ev.compute2);
        break;
      }
    }
  }
}

}  // namespace

RunResult run_lu(const LuConfig& lu, const platform::Platform& platform,
                 const MachineModel& machine, const AcquisitionConfig& acq) {
  sim::Engine engine(platform, sim::EngineConfig{acq.sharing});

  // Ground truth uses the full protocol model including the memory-copy
  // time real MPI runtimes exhibit in eager mode (the feature the paper
  // says SMPI does not model *yet*).
  smpi::Config mpi_cfg;
  mpi_cfg.model_copy_time = true;
  mpi_cfg.copy_rate = machine.truth().copy_rate;
  mpi_cfg.per_message_cpu_seconds = machine.truth().per_message_overhead;
  smpi::World world(engine, mpi_cfg, smpi::World::scatter_hosts(platform, lu.nprocs),
                    std::vector<int>(static_cast<std::size_t>(lu.nprocs), 0));

  RunResult result;
  result.compute_seconds.assign(static_cast<std::size_t>(lu.nprocs), 0.0);
  tit::Trace* trace = nullptr;
  if (acq.emit_trace) {
    result.trace = tit::Trace(lu.nprocs);
    trace = &result.trace;
  }

  std::vector<hwc::Instrument> instruments;
  instruments.reserve(static_cast<std::size_t>(lu.nprocs));
  for (int r = 0; r < lu.nprocs; ++r) {
    instruments.emplace_back(acq.granularity, acq.compiler, acq.probe_costs,
                             rng::combine(acq.seed, static_cast<std::uint64_t>(r)));
  }

  MachineModel noisy(machine.truth(), acq.noise, acq.seed);
  world.spawn_ranks([&](sim::Ctx& ctx, int me) -> sim::Coro {
    return drive_rank(ctx, me, lu, noisy, acq, world, instruments[static_cast<std::size_t>(me)],
                      result.compute_seconds[static_cast<std::size_t>(me)], trace);
  });
  engine.run();

  result.wall_time = engine.now();
  result.counter_totals.reserve(instruments.size());
  for (const hwc::Instrument& i : instruments) result.counter_totals.push_back(i.counter_total());
  result.mpi_stats = world.stats();
  result.engine_steps = engine.steps();
  return result;
}

}  // namespace tir::apps
