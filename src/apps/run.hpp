// Simulated execution of an LU instance on the ground-truth machine model:
// the stand-in for "running and tracing the real application on the real
// cluster".  One function serves every acquisition mode of the paper:
//
//   granularity None    -> the original (uninstrumented) run: its wall time
//                          is the reference the replay is judged against
//                          (Tables 1-2 "Orig.", Figures 3/6/7 denominators);
//   granularity Coarse  -> the counter-read-only run (reference counts for
//                          Figures 1/2/4/5);
//   granularity Fine    -> TAU default instrumentation (old pipeline);
//   granularity Minimal -> selective instrumentation (new pipeline),
//                          and the run that produces the Time-Independent
//                          Trace when emit_trace is set.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/lu.hpp"
#include "apps/machine.hpp"
#include "hwc/instrument.hpp"
#include "smpi/world.hpp"
#include "tit/trace.hpp"

namespace tir::apps {

struct AcquisitionConfig {
  hwc::Granularity granularity = hwc::Granularity::None;
  hwc::CompilerModel compiler = hwc::kO0;
  hwc::ProbeCosts probe_costs{};
  double noise = 0.01;        ///< system-noise amplitude of the real machine
  std::uint64_t seed = 1;
  sim::Sharing sharing = sim::Sharing::Uncontended;
  bool emit_trace = false;    ///< record the Time-Independent Trace
};

struct RunResult {
  double wall_time = 0.0;                ///< simulated makespan (seconds)
  std::vector<double> counter_totals;    ///< per-rank measured instructions
  std::vector<double> compute_seconds;   ///< per-rank time inside compute regions
  tit::Trace trace;                      ///< filled when emit_trace
  smpi::WorldStats mpi_stats;
  std::uint64_t engine_steps = 0;
};

/// Execute one LU instance. `platform` supplies topology and link
/// characteristics; `machine` supplies the ground-truth rates the replay
/// does not know about.
RunResult run_lu(const LuConfig& lu, const platform::Platform& platform,
                 const MachineModel& machine, const AcquisitionConfig& acq);

}  // namespace tir::apps
