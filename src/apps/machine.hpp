// Ground-truth machine behaviour: cache-dependent instruction rates + noise.
//
// This is the part of reality the *replay* framework does not see.  The
// replay prices every instruction at one calibrated rate; the actual
// machine runs a phase at a rate that depends on whether its working set
// fits the per-core L2 cache (paper §2.3: the A-4 calibration instance fits,
// larger instances do not, and that is what broke the original calibration).
//
// The penalty model is a steep linear ramp: working sets up to L2 run at
// the in-cache rate; the rate degrades linearly and reaches the
// out-of-cache asymptote at 1.35xL2 (SSOR sweeps thrash quickly once the
// slab spills).  Probe/runtime instructions (instrumentation, MPI
// internals) are small and hot, so they always run at the in-cache rate.
//
// Deterministic "system noise" (OS jitter, DVFS wiggle) multiplies each
// region's duration by 1 +- amplitude, keyed by (seed, rank, event index) so
// repeated runs reproduce bit-identical results.
#pragma once

#include <algorithm>
#include <cstdint>

#include "base/rng.hpp"
#include "platform/clusters.hpp"

namespace tir::apps {

class MachineModel {
 public:
  MachineModel(platform::ClusterCalibrationTruth truth, double noise_amplitude = 0.01,
               std::uint64_t seed = 1)
      : truth_(truth), noise_(noise_amplitude), seed_(seed) {}

  const platform::ClusterCalibrationTruth& truth() const { return truth_; }

  /// Application instruction rate for a phase with the given working set.
  double app_rate(double working_set_bytes) const {
    const double l2 = truth_.l2_bytes;
    if (working_set_bytes <= l2) return truth_.rate_in_cache;
    const double x = std::min((working_set_bytes - l2) / (0.35 * l2), 1.0);
    return truth_.rate_in_cache - (truth_.rate_in_cache - truth_.rate_out_of_cache) * x;
  }

  /// Rate of instrumentation-probe / runtime code (always cache-hot).
  double probe_rate() const { return truth_.rate_in_cache; }

  /// Multiplicative noise factor for one region execution.
  double noise_factor(std::uint64_t rank, std::uint64_t event_index) const {
    if (noise_ <= 0.0) return 1.0;
    const std::uint64_t stream = rng::combine(seed_, rank);
    return 1.0 + noise_ * rng::uniform_pm1(stream, event_index);
  }

  double noise_amplitude() const { return noise_; }
  std::uint64_t seed() const { return seed_; }

 private:
  platform::ClusterCalibrationTruth truth_;
  double noise_;
  std::uint64_t seed_;
};

}  // namespace tir::apps
