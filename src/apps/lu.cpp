#include "apps/lu.hpp"

namespace tir::apps {

NasClass nas_class(char name) {
  switch (name) {
    case 'S': return {'S', 12, 12, 12, 50};
    case 'W': return {'W', 33, 33, 33, 300};
    case 'A': return {'A', 64, 64, 64, 250};
    case 'B': return {'B', 102, 102, 102, 250};
    case 'C': return {'C', 162, 162, 162, 250};
    case 'D': return {'D', 408, 408, 408, 300};
    default: throw Error(std::string("unknown NPB class '") + name + "'");
  }
}

std::string LuConfig::label() const {
  return std::string(1, cls.name) + "-" + std::to_string(nprocs);
}

LuGrid::LuGrid(const LuConfig& cfg) {
  TIR_ASSERT(cfg.nprocs >= 1);
  TIR_ASSERT((cfg.nprocs & (cfg.nprocs - 1)) == 0);  // NPB LU: power of two
  int k = 0;
  while ((1 << k) < cfg.nprocs) ++k;
  px = 1 << ((k + 1) / 2);
  py = 1 << (k / 2);
  nx = cfg.cls.nx;
  ny = cfg.cls.ny;
}

double lu_working_set_bytes(const LuConfig& cfg, int rank) {
  const LuGrid g(cfg);
  return static_cast<double>(g.nx_loc(g.col(rank))) * g.ny_loc(g.row(rank)) *
         kBytesPerPlanePoint;
}

namespace {

constexpr double kDouble = 8.0;
constexpr double kPencilDoublesPerPoint = 5.0;  // 5 solution components

struct Emitter {
  std::vector<LuEvent>& out;

  void compute(LuPhase phase, double instr, double calls) {
    out.push_back({LuEvent::Type::Compute, phase, instr, calls, -1, 0.0, 0.0});
  }
  void send(LuPhase phase, int partner, double bytes) {
    out.push_back({LuEvent::Type::Send, phase, 0.0, 0.0, partner, bytes, 0.0});
  }
  void recv(LuPhase phase, int partner, double bytes) {
    out.push_back({LuEvent::Type::Recv, phase, 0.0, 0.0, partner, bytes, 0.0});
  }
  void bcast(double bytes, int root) {
    out.push_back({LuEvent::Type::Bcast, LuPhase::Init, 0.0, 0.0, root, bytes, 0.0});
  }
  void allreduce(double bytes, double compute2) {
    out.push_back({LuEvent::Type::AllReduce, LuPhase::Norm, 0.0, 0.0, -1, bytes, compute2});
  }
};

}  // namespace

double lu_rank_instructions(const LuConfig& cfg, int rank, const LuCosts& costs) {
  double total = 0.0;
  for (const LuEvent& e : lu_events(cfg, rank, costs)) total += e.instructions;
  return total;
}

std::vector<LuEvent> lu_events(const LuConfig& cfg, int rank, const LuCosts& costs) {
  const LuGrid g(cfg);
  TIR_ASSERT(rank >= 0 && rank < cfg.nprocs);
  const int row = g.row(rank);
  const int col = g.col(rank);
  const int nxl = g.nx_loc(col);
  const int nyl = g.ny_loc(row);
  const int nz = cfg.cls.nz;
  const double plane_pts = static_cast<double>(nxl) * nyl;
  const double vol_pts = plane_pts * nz;

  const int north = row > 0 ? g.rank_of(row - 1, col) : -1;
  const int south = row < g.py - 1 ? g.rank_of(row + 1, col) : -1;
  const int west = col > 0 ? g.rank_of(row, col - 1) : -1;
  const int east = col < g.px - 1 ? g.rank_of(row, col + 1) : -1;

  // Pencil edges exchanged per k-plane during the sweeps.
  const double bytes_ns = kPencilDoublesPerPoint * kDouble * nxl;  // north/south edge
  const double bytes_ew = kPencilDoublesPerPoint * kDouble * nyl;  // east/west edge
  // Full faces exchanged by the rhs halo (exchange_3).
  const double face_ns = bytes_ns * nz;
  const double face_ew = bytes_ew * nz;

  std::vector<LuEvent> events;
  // init + setup + per-iteration: rhs halo(<=8) + rhs + 2 sweeps + add + norm
  events.reserve(8 + static_cast<std::size_t>(cfg.iterations()) *
                         (12 + 2 * static_cast<std::size_t>(nz) * 5));
  Emitter e{events};

  events.push_back({LuEvent::Type::Init, LuPhase::Init, 0, 0, -1, 0, 0});
  // Problem parameters / timing sync, as NPB's bcast of the input deck.
  e.bcast(40.0, 0);
  e.bcast(24.0, 0);
  e.bcast(16.0, 0);
  // Grid setup + initial field (roughly one iteration of per-point work).
  const double iter_cost =
      costs.rhs + costs.jacld + costs.blts + costs.jacu + costs.buts + costs.add;
  const double init_instr = iter_cost * vol_pts * 0.5;
  e.compute(LuPhase::Init, init_instr, costs.calls_per_instr * init_instr);

  // Red-black ordered halo exchange: deadlock-free with blocking sends even
  // at rendezvous sizes (NPB itself uses irecv+send; the ordering is the
  // volume-equivalent discipline).
  const auto halo = [&](LuPhase phase) {
    if (north >= 0 || south >= 0) {
      if (row % 2 == 0) {
        if (south >= 0) e.send(phase, south, face_ns);
        if (north >= 0) e.send(phase, north, face_ns);
        if (south >= 0) e.recv(phase, south, face_ns);
        if (north >= 0) e.recv(phase, north, face_ns);
      } else {
        if (north >= 0) e.recv(phase, north, face_ns);
        if (south >= 0) e.recv(phase, south, face_ns);
        if (north >= 0) e.send(phase, north, face_ns);
        if (south >= 0) e.send(phase, south, face_ns);
      }
    }
    if (west >= 0 || east >= 0) {
      if (col % 2 == 0) {
        if (east >= 0) e.send(phase, east, face_ew);
        if (west >= 0) e.send(phase, west, face_ew);
        if (east >= 0) e.recv(phase, east, face_ew);
        if (west >= 0) e.recv(phase, west, face_ew);
      } else {
        if (west >= 0) e.recv(phase, west, face_ew);
        if (east >= 0) e.recv(phase, east, face_ew);
        if (west >= 0) e.send(phase, west, face_ew);
        if (east >= 0) e.send(phase, east, face_ew);
      }
    }
  };

  const int iters = cfg.iterations();
  for (int it = 0; it < iters; ++it) {
    // --- rhs: halo exchange + right-hand side ---
    halo(LuPhase::Rhs);
    const double rhs_instr = costs.rhs * vol_pts + costs.per_plane * nz;
    e.compute(LuPhase::Rhs, rhs_instr,
              costs.calls_per_instr * rhs_instr + costs.calls_per_plane * nz);

    // --- lower-triangular sweep (jacld + blts), wavefront from (0,0) ---
    for (int k = 0; k < nz; ++k) {
      if (north >= 0) e.recv(LuPhase::Blts, north, bytes_ns);
      if (west >= 0) e.recv(LuPhase::Blts, west, bytes_ew);
      const double plane_instr =
          (costs.jacld + costs.blts) * plane_pts + 2.0 * costs.per_plane;
      e.compute(LuPhase::Blts, plane_instr,
                costs.calls_per_instr * plane_instr + 2.0 * costs.calls_per_plane);
      if (south >= 0) e.send(LuPhase::Blts, south, bytes_ns);
      if (east >= 0) e.send(LuPhase::Blts, east, bytes_ew);
    }

    // --- upper-triangular sweep (jacu + buts), wavefront from (px-1,py-1) ---
    for (int k = nz - 1; k >= 0; --k) {
      if (south >= 0) e.recv(LuPhase::Buts, south, bytes_ns);
      if (east >= 0) e.recv(LuPhase::Buts, east, bytes_ew);
      const double plane_instr =
          (costs.jacu + costs.buts) * plane_pts + 2.0 * costs.per_plane;
      e.compute(LuPhase::Buts, plane_instr,
                costs.calls_per_instr * plane_instr + 2.0 * costs.calls_per_plane);
      if (north >= 0) e.send(LuPhase::Buts, north, bytes_ns);
      if (west >= 0) e.send(LuPhase::Buts, west, bytes_ew);
    }

    // --- add: solution update ---
    e.compute(LuPhase::Add, costs.add * vol_pts, costs.calls_per_instr * costs.add * vol_pts);

    // --- residual norm at the first and last iteration (NPB inorm points) ---
    if (it == 0 || it == iters - 1) {
      e.allreduce(5 * kDouble, costs.norm_compute);
    }
  }

  events.push_back({LuEvent::Type::Finalize, LuPhase::Init, 0, 0, -1, 0, 0});
  return events;
}

}  // namespace tir::apps
