// Shared experiment drivers for the bench binaries (one binary per paper
// table/figure; see DESIGN.md §3 for the index).
#pragma once

#include <string>
#include <vector>

#include "apps/lu.hpp"
#include "base/stats.hpp"
#include "core/predictor.hpp"
#include "core/sweep.hpp"
#include "hwc/instrument.hpp"
#include "platform/clusters.hpp"

namespace tir::exp {

/// A named cluster with its ground-truth machine behaviour and the probe
/// costs of the tracing toolchain on that CPU generation (counter reads and
/// timer calls are cheaper on graphene's Nehalem cores than on bordereau's
/// Opterons).
struct ClusterSetup {
  std::string name;
  platform::Platform platform;
  platform::ClusterCalibrationTruth truth;
  hwc::ProbeCosts probe_costs{};
};

ClusterSetup bordereau_setup();
ClusterSetup graphene_setup();

/// SSOR iterations used by the benches; overridable with TIR_ITERS.  The
/// paper runs the full 250; errors and overheads are iteration-stable (both
/// sides of every ratio use the same count), so a reduced default keeps the
/// benches interactive.
int bench_iterations(int fallback = 10);

/// Scale a reduced-iteration time up to the full NPB iteration count so
/// absolute values are comparable with the paper's tables.
double scale_to_full(double seconds, const apps::LuConfig& lu);

// --- scenario grids for core::sweep -----------------------------------------

/// Build a calibrated-rate ladder over one platform: `count` scenarios whose
/// single-rank rate spans [base_rate/span, base_rate*span] geometrically
/// (the grid a "how sensitive is the prediction to calibration error?"
/// sweep replays).  All scenarios borrow `platform`, which must outlive the
/// sweep; labels are "rate[i]=<rate>".
std::vector<core::Scenario> rate_ladder(const platform::Platform& platform, double base_rate,
                                        int count, double span = 2.0,
                                        sim::Sharing sharing = sim::Sharing::Uncontended);

// --- instrumentation-impact experiments (Figures 1/2/4/5) ------------------

/// Per-process relative difference (%) of measured instruction counts
/// between `granularity` and coarse instrumentation, averaged over `runs`
/// seeds (the paper averages ten runs).
struct CounterComparison {
  std::vector<double> rel_diff_pct;  ///< one entry per process
  stats::Summary summary;
};

CounterComparison compare_counters(const apps::LuConfig& lu, const ClusterSetup& cluster,
                                   hwc::Granularity granularity, hwc::CompilerModel compiler,
                                   int runs, int iterations, std::uint64_t seed = 1);

// --- table/series printers --------------------------------------------------

/// Print the header block every bench starts with.
void print_preamble(const std::string& experiment, const std::string& paper_ref,
                    const std::string& cluster, int iterations);

struct OverheadRow {
  std::string instance;
  double orig_old, instr_old;  ///< former implementation (fine, -O0)
  double orig_new, instr_new;  ///< modified implementation (minimal, -O3)
};

/// Tables 1-2 layout: times plus overhead percentages.
void print_overhead_table(const std::vector<OverheadRow>& rows);

struct DistributionRow {
  std::string instance;
  stats::Summary summary;  ///< of per-process relative differences (%)
};

/// Figures 1/2/4/5 layout: five-number summaries per instance.
void print_distribution_series(const std::vector<DistributionRow>& rows);

struct ErrorRow {
  std::string cls;
  int nprocs = 0;
  double real_seconds = 0.0;
  double predicted_seconds = 0.0;
  double error_pct = 0.0;
};

/// Figures 3/6/7 layout: relative error vs. process count per class.
void print_error_series(const std::vector<ErrorRow>& rows);

}  // namespace tir::exp
