#include "exp/experiments.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/run.hpp"
#include "base/rng.hpp"

namespace tir::exp {

ClusterSetup bordereau_setup() {
  return {"bordereau", platform::bordereau(), platform::bordereau_truth(), hwc::ProbeCosts{}};
}

ClusterSetup graphene_setup() {
  hwc::ProbeCosts costs;
  costs.fine_instr_per_call = 440.0;  // cheaper timer/callpath upkeep
  costs.mpi_probe_instr = 9000.0;     // faster PAPI counter reads
  costs.mpi_leak_instr = 5200.0;
  costs.flush_seconds = 0.003;        // faster local disks
  return {"graphene", platform::graphene(), platform::graphene_truth(), costs};
}

int bench_iterations(int fallback) {
  if (const char* env = std::getenv("TIR_ITERS"); env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

double scale_to_full(double seconds, const apps::LuConfig& lu) {
  return seconds * static_cast<double>(lu.cls.iterations) / lu.iterations();
}

std::vector<core::Scenario> rate_ladder(const platform::Platform& platform, double base_rate,
                                        int count, double span, sim::Sharing sharing) {
  if (count < 1) throw ConfigError("rate_ladder needs at least one scenario");
  if (!(base_rate > 0.0) || !(span >= 1.0)) {
    throw ConfigError("rate_ladder needs base_rate > 0 and span >= 1");
  }
  std::vector<core::Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Geometric ladder from base/span to base*span (just base when count==1).
    const double t = count > 1 ? 2.0 * i / (count - 1) - 1.0 : 0.0;
    const double rate = base_rate * std::pow(span, t);
    core::Scenario sc;
    sc.platform = &platform;
    sc.config.rates = {rate};
    sc.config.sharing = sharing;
    sc.label = "rate[" + std::to_string(i) + "]=" + std::to_string(rate);
    scenarios.push_back(std::move(sc));
  }
  return scenarios;
}

CounterComparison compare_counters(const apps::LuConfig& lu, const ClusterSetup& cluster,
                                   hwc::Granularity granularity, hwc::CompilerModel compiler,
                                   int runs, int iterations, std::uint64_t seed) {
  apps::LuConfig cfg = lu;
  cfg.iterations_override = iterations;

  CounterComparison out;
  out.rel_diff_pct.assign(static_cast<std::size_t>(cfg.nprocs), 0.0);
  for (int run = 0; run < runs; ++run) {
    const std::uint64_t run_seed = rng::combine(seed, static_cast<std::uint64_t>(run));
    const apps::MachineModel machine(cluster.truth, 0.01, run_seed);

    apps::AcquisitionConfig acq;
    acq.compiler = compiler;
    acq.probe_costs = cluster.probe_costs;
    acq.seed = run_seed;

    acq.granularity = granularity;
    const apps::RunResult instrumented = apps::run_lu(cfg, cluster.platform, machine, acq);
    acq.granularity = hwc::Granularity::Coarse;
    acq.seed = rng::combine(run_seed, 0xc0a5e);  // independent coarse run
    const apps::RunResult coarse = apps::run_lu(cfg, cluster.platform, machine, acq);

    for (int p = 0; p < cfg.nprocs; ++p) {
      const auto i = static_cast<std::size_t>(p);
      out.rel_diff_pct[i] += stats::relative_error_pct(instrumented.counter_totals[i],
                                                       coarse.counter_totals[i]) /
                             runs;
    }
  }
  out.summary = stats::summarize(out.rel_diff_pct);
  return out;
}

void print_preamble(const std::string& experiment, const std::string& paper_ref,
                    const std::string& cluster, int iterations) {
  std::printf("# %s\n", experiment.c_str());
  std::printf("# reproduces: %s\n", paper_ref.c_str());
  std::printf("# cluster: %s   SSOR iterations per run: %d (set TIR_ITERS to change)\n",
              cluster.c_str(), iterations);
  std::printf("#\n");
}

void print_overhead_table(const std::vector<OverheadRow>& rows) {
  std::printf("%-8s | %12s %22s | %12s %22s\n", "inst.", "orig [5]", "instr [5] (overhead)",
              "orig new", "instr new (overhead)");
  std::printf("---------+--------------------------------------+"
              "--------------------------------------\n");
  for (const OverheadRow& r : rows) {
    const double ov_old = 100.0 * (r.instr_old - r.orig_old) / r.orig_old;
    const double ov_new = 100.0 * (r.instr_new - r.orig_new) / r.orig_new;
    std::printf("%-8s | %10.2fs %12.2fs (%+6.2f%%) | %10.2fs %12.2fs (%+6.2f%%)\n",
                r.instance.c_str(), r.orig_old, r.instr_old, ov_old, r.orig_new, r.instr_new,
                ov_new);
  }
}

void print_distribution_series(const std::vector<DistributionRow>& rows) {
  std::printf("%-8s | %8s %8s %8s %8s %8s | %8s\n", "inst.", "min", "q1", "median", "q3", "max",
              "mean");
  std::printf("---------+----------------------------------------------+---------\n");
  for (const DistributionRow& r : rows) {
    std::printf("%-8s | %7.2f%% %7.2f%% %7.2f%% %7.2f%% %7.2f%% | %7.2f%%\n", r.instance.c_str(),
                r.summary.min, r.summary.q1, r.summary.median, r.summary.q3, r.summary.max,
                r.summary.mean);
  }
}

void print_error_series(const std::vector<ErrorRow>& rows) {
  std::printf("%-6s %8s | %12s %12s | %10s\n", "class", "procs", "real", "simulated", "error");
  std::printf("----------------+---------------------------+-----------\n");
  for (const ErrorRow& r : rows) {
    std::printf("%-6s %8d | %11.2fs %11.2fs | %+9.2f%%\n", r.cls.c_str(), r.nprocs,
                r.real_seconds, r.predicted_seconds, r.error_pct);
  }
}

}  // namespace tir::exp
